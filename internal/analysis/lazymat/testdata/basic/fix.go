// The basic lazymat fixture: a column-native package (the test assigns
// it a path under internal/core) holding a record-face API and every
// caller shape.
package fix

type Attack struct{ ID uint64 }

type Store struct{ recs []*Attack }

// Attacks materializes the full record arena.
//
//botscope:materializes
func (s *Store) Attacks() []*Attack { return s.recs }

// AttackRecordAt is the per-row CAS-memo bridge.
//
//botscope:recordbridge
func (s *Store) AttackRecordAt(i int) *Attack { return s.recs[i] }

// AttackAt is column-native: no directive, no record face.
func (s *Store) AttackAt(i int) uint64 { return s.recs[i].ID }

func scan(s *Store) int {
	return len(s.Attacks()) // want `materializes the attack record arena`
}

// bridge uses the per-row memo outside any hot path: allowed.
func bridge(s *Store) *Attack {
	return s.AttackRecordAt(0)
}

// hot reads one record per call.
//
//botscope:hotpath
func hot(s *Store) uint64 {
	return s.AttackRecordAt(0).ID // want `record-face bridge AttackRecordAt`
}

// hotIndirect reaches the face through a local helper.
//
//botscope:hotpath
func hotIndirect(s *Store) uint64 {
	return helper(s) // want `reaches the record face`
}

func helper(s *Store) uint64 { return s.AttackRecordAt(1).ID }

// hotClean stays on the columns: silent.
//
//botscope:hotpath
func hotClean(s *Store) uint64 {
	return s.AttackAt(0)
}
