// The out-of-scope lazymat fixture: the same record-face API under a
// path outside the column-native scope. Materializer calls pass — this
// package is allowed to want records — but the hotpath rule is global:
// hot functions stay off the record face everywhere.
package fix

type Attack struct{ ID uint64 }

type Store struct{ recs []*Attack }

// Attacks materializes the full record arena.
//
//botscope:materializes
func (s *Store) Attacks() []*Attack { return s.recs }

// AttackRecordAt is the per-row CAS-memo bridge.
//
//botscope:recordbridge
func (s *Store) AttackRecordAt(i int) *Attack { return s.recs[i] }

// report-style consumers materialize freely outside the scope.
func table(s *Store) int {
	return len(s.Attacks())
}

// hot is hot even here.
//
//botscope:hotpath
func hot(s *Store) uint64 {
	return s.AttackRecordAt(0).ID // want `record-face bridge AttackRecordAt`
}
