// Package lazymat defines the columnar-tier botvet analyzer that keeps
// the column-native packages off the record face. The lazy snapshot load
// path answers every Table/Figure kernel from columns alone; a single
// call to a record-materializing accessor rebuilds the full *Attack
// arena and forfeits the load path's memory profile. The dataset package
// marks its API with two directives:
//
//	//botscope:materializes  — rebuilds the full record arena
//	                           (Store.Attacks, ByFamily, InRange, ...)
//	//botscope:recordbridge  — materializes one row on demand through
//	                           the CAS memo (AttackRecordAt, AttackRecords)
//
// and the facts travel across packages. Within the column-native scope
// (default: internal/core, internal/monitor, internal/stream) the
// analyzer reports:
//
//   - any call to a //botscope:materializes function — the package-level
//     contract PR 9 pinned with a runtime test ("full runall never
//     materializes records"), now a compile-time gate;
//   - any call from a //botscope:hotpath function that reaches the
//     record face at all — even the per-row bridge allocates, so hot
//     paths must stay on cursors; the reach test is interprocedural
//     through the ssabuild summaries and exported facts.
//
// Audited exceptions carry "//botvet:ignore lazymat <reason>".
package lazymat

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"botscope/internal/analysis/ssabuild"
	"botscope/internal/analysis/vetutil"
)

// Directives marking the dataset record-face API.
const (
	MaterializesDirective = "botscope:materializes"
	BridgeDirective       = "botscope:recordbridge"
	hotpathDirective      = "botscope:hotpath"
)

const defaultScope = "botscope/internal/core,botscope/internal/monitor,botscope/internal/stream"

var Analyzer = &analysis.Analyzer{
	Name:      "lazymat",
	Doc:       "column-native packages must not materialize attack records: no //botscope:materializes calls in scope, no record-face reach from //botscope:hotpath functions",
	Requires:  []*analysis.Analyzer{ssabuild.Analyzer},
	FactTypes: []analysis.Fact{(*matFact)(nil)},
	Run:       run,
}

var scopeFlag string

func init() {
	Analyzer.Flags.StringVar(&scopeFlag, "pkgs", defaultScope,
		"comma-separated import paths (with subpackages) held to the column-native contract")
}

// matFact classifies a function's relationship to the record face.
type matFact struct {
	Kind int // 1 = materializes the arena, 2 = per-row bridge, 3 = transitively reaches the face
}

func (*matFact) AFact() {}
func (f *matFact) String() string {
	switch f.Kind {
	case 1:
		return "materializes attack records"
	case 2:
		return "record-face bridge"
	default:
		return "reaches the record face"
	}
}

type checker struct {
	pass  *analysis.Pass
	ssa   *ssabuild.SSA
	local map[*types.Func]int // directive-marked functions in this package
	memo  map[*ssabuild.Func]bool
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:  pass,
		ssa:   pass.ResultOf[ssabuild.Analyzer].(*ssabuild.SSA),
		local: map[*types.Func]int{},
		memo:  map[*ssabuild.Func]bool{},
	}

	hotpath := map[*ssabuild.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			switch {
			case vetutil.HasDirective(fd.Doc, MaterializesDirective):
				c.local[obj] = 1
				pass.ExportObjectFact(obj, &matFact{Kind: 1})
			case vetutil.HasDirective(fd.Doc, BridgeDirective):
				c.local[obj] = 2
				pass.ExportObjectFact(obj, &matFact{Kind: 2})
			}
			if vetutil.HasDirective(fd.Doc, hotpathDirective) {
				if f := c.ssa.FuncFor(fd); f != nil {
					hotpath[f] = true
				}
			}
		}
	}

	// Export reach facts for every plain function that transitively
	// touches the record face, so a hot path in another package sees
	// through this one.
	for _, f := range c.ssa.Funcs {
		if f.Obj == nil || c.local[f.Obj] != 0 {
			continue
		}
		if c.reaches(f, map[*ssabuild.Func]bool{}) {
			pass.ExportObjectFact(f.Obj, &matFact{Kind: 3})
		}
	}

	inScope := vetutil.InScope(pass.Pkg.Path(), vetutil.SplitList(scopeFlag))
	for _, f := range c.ssa.Funcs {
		hot := hotpath[f]
		if !inScope && !hot {
			continue
		}
		for _, call := range f.Calls {
			kind := c.kindOf(call.Callee)
			if kind == 0 || c.skip(call.Node.Pos()) {
				continue
			}
			switch {
			case inScope && kind == 1:
				c.pass.Reportf(call.Node.Pos(),
					"%s materializes the attack record arena inside a column-native package; stay on the cursor/column API (AttackAt, RowsByFamily, BotDense)",
					call.Callee.Name())
			case hot && kind == 2:
				c.pass.Reportf(call.Node.Pos(),
					"record-face bridge %s called from a //botscope:hotpath function; the per-row memo allocates — read the columns through a cursor instead",
					call.Callee.Name())
			case hot && kind == 3:
				c.pass.Reportf(call.Node.Pos(),
					"call to %s reaches the record face from a //botscope:hotpath function; keep the hot path column-native",
					call.Callee.Name())
			}
		}
	}
	return nil, nil
}

func (c *checker) skip(pos token.Pos) bool {
	return vetutil.IsTestFile(c.pass.Fset, pos) || vetutil.Suppressed(c.pass, pos, "lazymat")
}

// kindOf resolves a callee's record-face classification: directive kinds
// (1, 2) from this package or facts, reach kind (3) from local summaries
// or facts.
func (c *checker) kindOf(fn *types.Func) int {
	if fn == nil {
		return 0
	}
	if k := c.local[fn]; k != 0 {
		return k
	}
	var fact matFact
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Kind
	}
	if target := c.ssa.FuncOf(fn); target != nil && c.reaches(target, map[*ssabuild.Func]bool{}) {
		return 3
	}
	return 0
}

// reaches reports whether f (a plain, unmarked function) transitively
// calls into the record face.
func (c *checker) reaches(f *ssabuild.Func, visited map[*ssabuild.Func]bool) bool {
	if v, ok := c.memo[f]; ok {
		return v
	}
	if visited[f] {
		return false
	}
	visited[f] = true
	out := c.decide(f, visited)
	delete(visited, f)
	c.memo[f] = out
	return out
}

func (c *checker) decide(f *ssabuild.Func, visited map[*ssabuild.Func]bool) bool {
	for _, call := range f.Calls {
		fn := call.Callee
		if fn == nil {
			continue
		}
		if c.local[fn] != 0 {
			return true
		}
		var fact matFact
		if c.pass.ImportObjectFact(fn, &fact) {
			return true
		}
		if target := c.ssa.FuncOf(fn); target != nil && c.reaches(target, visited) {
			return true
		}
	}
	return false
}
