package lazymat_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/lazymat"
)

// TestBasic covers the in-package shapes under a column-native import
// path: materializer calls are reported anywhere in the package, the
// per-row bridge passes in plain functions but is reported from
// //botscope:hotpath functions — directly and through a local helper.
func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", lazymat.Analyzer, "botscope/internal/core/fix")
}

// TestOutOfScope pins the package gate: materializer calls outside the
// column-native scope stay silent, while the hotpath rule still holds
// everywhere — a hot function has no business on the record face in any
// package.
func TestOutOfScope(t *testing.T) {
	atest.Run(t, "testdata/outofscope", lazymat.Analyzer, "botscope/internal/report/fix")
}

// TestCrossPackage proves the record-face facts flow from the declaring
// (dataset-like) package to a column-native consumer.
func TestCrossPackage(t *testing.T) {
	atest.RunPkgs(t, lazymat.Analyzer, []atest.Pkg{
		{Dir: "testdata/xpkg/ds", Path: "botscope/internal/dataset/fix"},
		{Dir: "testdata/xpkg/core", Path: "botscope/internal/core/fix"},
	})
}
