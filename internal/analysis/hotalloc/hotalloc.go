// Package hotalloc defines a botvet analyzer that keeps the
// zero-allocation kernels allocation-free at the source level — the
// static twin of benchguard's runtime allocs/op budgets. Functions opt in
// with the comment directive
//
//	//botscope:hotpath
//
// in their doc comment (the ARIMA CSS objective, the dispersion scan, the
// synth formation samplers). Inside an annotated function the analyzer
// reports the constructs that defeat the zero-allocation contract:
//
//   - fmt.Sprintf / Sprint / Sprintln / Errorf / Appendf — formatting
//     allocates the result and boxes every argument;
//   - map, slice, or make allocations inside a loop — per-iteration
//     heap growth (a make outside any loop is one-time setup and legal);
//   - append inside a loop to a local slice that was never preallocated
//     with make(..., n) in the same function — unbounded growth
//     reallocates along the hot path (appending to a parameter follows
//     the caller-owns-the-buffer convention and is legal);
//   - interface boxing of scalars: passing an integer, float, bool, or
//     string argument to an interface-typed parameter heap-allocates the
//     value;
//   - closures that capture enclosing variables — each closure value
//     allocates its capture environment (capture-free literals are
//     statically allocated and legal).
//
// Intentional exceptions carry "//botvet:allow hotalloc" or
// "//botvet:ignore hotalloc <reason>".
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/vetutil"
)

// Directive is the doc-comment marker a hot-path function carries.
const Directive = "botscope:hotpath"

var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "report allocation-inducing constructs inside //botscope:hotpath functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || !vetutil.HasDirective(decl.Doc, Directive) {
			return
		}
		checkHotFunc(pass, decl)
	})
	return nil, nil
}

func checkHotFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	report := func(pos ast.Node, format string, args ...any) {
		if !vetutil.Suppressed(pass, pos.Pos(), "hotalloc") {
			pass.Reportf(pos.Pos(), format, args...)
		}
	}

	params := paramObjects(pass.TypesInfo, decl)
	prealloc := preallocatedSlices(pass.TypesInfo, decl.Body)

	// walk tracks loop depth explicitly so per-iteration allocations can
	// be distinguished from one-time setup.
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		if n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.ForStmt:
			walk(x.Init, loopDepth)
			walk(x.Cond, loopDepth)
			walk(x.Post, loopDepth+1)
			walk(x.Body, loopDepth+1)
			return
		case *ast.RangeStmt:
			walk(x.X, loopDepth)
			walk(x.Body, loopDepth+1)
			return
		case *ast.FuncLit:
			if caps := capturedNames(pass.TypesInfo, x); len(caps) > 0 {
				report(x, "closure in hot path captures %s; each closure value allocates its environment — hoist the state or pass it explicitly", strings.Join(caps, ", "))
			}
			// The literal's body runs on its own schedule; don't double-
			// report its internals against the enclosing hot path.
			return
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(x)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				if loopDepth > 0 {
					report(x, "map literal allocated every loop iteration in hot path; hoist it out of the loop")
				}
			case *types.Slice:
				if loopDepth > 0 {
					report(x, "slice literal allocated every loop iteration in hot path; hoist it out of the loop")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, x, loopDepth, params, prealloc, report)
		}
		// Default: recurse through all children at the same loop depth.
		children(n, func(c ast.Node) { walk(c, loopDepth) })
	}
	walk(decl.Body, 0)
}

// checkHotCall inspects one call inside a hot-path function.
func checkHotCall(pass *analysis.Pass, call *ast.CallExpr, loopDepth int,
	params, prealloc map[types.Object]bool, report func(ast.Node, string, ...any)) {

	// Builtins: make in a loop, and unbounded append in a loop.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				if loopDepth > 0 {
					report(call, "make allocates every loop iteration in hot path; hoist the buffer out of the loop and reuse it")
				}
			case "new":
				if loopDepth > 0 {
					report(call, "new allocates every loop iteration in hot path; hoist the value out of the loop")
				}
			case "append":
				if loopDepth > 0 && len(call.Args) > 0 {
					if obj, isIdent := appendDest(pass.TypesInfo, call.Args[0]); isIdent && !params[obj] && !prealloc[obj] {
						report(call, "append grows %s inside a hot loop without preallocation; make(..., 0, n) it up front", obj.Name())
					}
				}
			}
			return
		}
	}

	fn := calleeFunc(pass.TypesInfo, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf", "Append", "Appendln":
			report(call, "fmt.%s allocates its result and boxes every argument in hot path; precompute or restructure the output", fn.Name())
			return // boxing into its variadic args is implied; don't double-report
		}
	}

	// Interface boxing of scalars: a basic-typed argument passed to an
	// interface-typed parameter heap-allocates the value.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil {
			continue
		}
		if basic, isBasic := at.Underlying().(*types.Basic); isBasic && basic.Kind() != types.UntypedNil {
			report(arg, "scalar %s boxed into interface parameter in hot path; avoid the conversion or keep it off the hot path", at.String())
		}
	}
}

// paramTypeAt resolves the effective parameter type for argument i,
// unrolling the variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// appendDest resolves append's destination to a plain identifier's object.
// Field destinations (pool.buf) return ok=false: growth amortized across
// calls through a retained struct buffer is the sanctioned scratch pattern.
func appendDest(info *types.Info, e ast.Expr) (types.Object, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x), true
	case *ast.SliceExpr:
		return appendDest(info, x.X)
	}
	return nil, false
}

// paramObjects collects the function's parameter (and named result)
// objects — append targets the caller owns.
func paramObjects(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addFields(decl.Type.Params)
	addFields(decl.Type.Results)
	if decl.Recv != nil {
		addFields(decl.Recv)
	}
	return out
}

// preallocatedSlices collects local variables bound to make(...) with an
// explicit length or capacity anywhere in the body — buffers whose growth
// was budgeted up front.
func preallocatedSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, isB := info.Uses[id].(*types.Builtin); !isB || b.Name() != "make" {
				continue
			}
			if lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := info.ObjectOf(lhs); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// capturedNames lists the distinct enclosing-scope variables a closure
// references (by declaration position outside the literal).
func capturedNames(info *types.Info, lit *ast.FuncLit) []string {
	seen := map[types.Object]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || seen[obj] {
			return true
		}
		// Package-level variables are not captures — referencing them
		// costs nothing extra.
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true
		}
		if !vetutil.DeclaredWithin(obj, lit.Pos(), lit.End()) {
			seen[obj] = true
			names = append(names, obj.Name())
		}
		return true
	})
	return names
}

// calleeFunc resolves a call's target to a *types.Func, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// children invokes f on each direct child node of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // enter n itself
		}
		if c == nil {
			return false
		}
		f(c)
		return false // do not descend; walk recurses explicitly
	})
}
