package hotalloc_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/hotalloc"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", hotalloc.Analyzer, "example.com/a")
}

// TestCluster covers the shapes the cluster wire codec and ring rely on:
// caller-owned append encoding and pre-sized merge accumulators stay
// silent, per-frame scratch allocation is reported.
func TestCluster(t *testing.T) {
	atest.Run(t, "testdata/cluster", hotalloc.Analyzer, "example.com/a")
}
