package hotalloc_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/hotalloc"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", hotalloc.Analyzer, "example.com/a")
}
