package hotalloc_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/hotalloc"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", hotalloc.Analyzer, "example.com/a")
}

// TestCluster covers the shapes the cluster wire codec and ring rely on:
// caller-owned append encoding and pre-sized merge accumulators stay
// silent, per-frame scratch allocation is reported.
func TestCluster(t *testing.T) {
	atest.Run(t, "testdata/cluster", hotalloc.Analyzer, "example.com/a")
}

// TestCursor covers the column-cursor shapes from the lazy snapshot load
// path: value-type views with column-load accessors scanned into a
// caller-owned scratch slice stay silent, while per-row scratch
// allocation, per-row formatting, and boxing of cursor fields are
// reported.
func TestCursor(t *testing.T) {
	atest.Run(t, "testdata/cursor", hotalloc.Analyzer, "example.com/a")
}
