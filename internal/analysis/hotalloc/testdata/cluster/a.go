// Package a seeds hotalloc with the shapes that show up in the cluster
// wire codec and ring: append-based encoders that reuse a caller-owned
// buffer (legal) next to per-frame scratch allocation (reported).
package a

import (
	"encoding/binary"
	"fmt"
)

type entry struct {
	seq uint64
	id  int64
}

// appendFrame mimics wire.AppendFrame: every byte lands in the caller's
// buffer, so the encode loop allocates nothing of its own.
//
//botscope:hotpath
func appendFrame(dst []byte, entries []entry) []byte {
	for _, e := range entries {
		dst = binary.BigEndian.AppendUint64(dst, e.seq)
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.id)) // caller owns dst: legal
	}
	return dst
}

// badScratchPerFrame allocates a fresh scratch buffer for every frame —
// the regression the wire writer's reused buffer exists to avoid.
//
//botscope:hotpath
func badScratchPerFrame(entries []entry) int {
	total := 0
	for _, e := range entries {
		scratch := make([]byte, 16) // want `make allocates every loop iteration`
		binary.BigEndian.PutUint64(scratch, e.seq)
		total += len(scratch)
	}
	return total
}

// badFrameLabel formats a label per frame on the encode path.
//
//botscope:hotpath
func badFrameLabel(entries []entry) []string {
	var out []string
	for _, e := range entries {
		out = append(out, fmt.Sprintf("frame-%d", e.seq)) // want `fmt.Sprintf allocates` `append grows out inside a hot loop`
	}
	return out
}

// ringOwner mimics Ring.Owner: a pure binary search over precomputed
// points, nothing allocated per lookup.
//
//botscope:hotpath
func ringOwner(points []uint64, owners []int, h uint64) int {
	lo, hi := 0, len(points)
	for lo < hi {
		mid := (lo + hi) / 2
		if points[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(points) {
		lo = 0
	}
	if len(owners) == 0 {
		return -1
	}
	return owners[lo]
}

// mergeCounts mimics the keyed-stat merge: the accumulator map is sized
// once before the loop.
//
//botscope:hotpath
func mergeCounts(parts [][]entry) map[int64]uint64 {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	acc := make(map[int64]uint64, n) // one-time setup: legal
	for _, p := range parts {
		for _, e := range p {
			acc[e.id] += e.seq
		}
	}
	return acc
}
