package a

import "fmt"

// hotSum is a hot-path kernel fixture: every allocating construct below
// must be reported.
//
//botscope:hotpath
func hotSum(xs []float64) string {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return fmt.Sprintf("%f", total) // want `fmt.Sprintf allocates`
}

//botscope:hotpath
func hotMapPerIteration(xs []int) int {
	total := 0
	for _, x := range xs {
		seen := map[int]bool{} // want `map literal allocated every loop iteration`
		seen[x] = true
		total += len(seen)
	}
	return total
}

//botscope:hotpath
func hotMakeInLoop(xs []int) int {
	total := 0
	for range xs {
		buf := make([]int, 8) // want `make allocates every loop iteration`
		total += len(buf)
	}
	return total
}

//botscope:hotpath
func hotUnboundedAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append grows out inside a hot loop`
	}
	return out
}

func sink(v interface{}) {}

//botscope:hotpath
func hotBoxing(x int) {
	sink(x) // want `scalar int boxed into interface parameter`
}

//botscope:hotpath
func hotClosureCapture(xs []float64) float64 {
	best := 0.0
	cmp := func(i int) bool { return xs[i] < best } // want `closure in hot path captures`
	if cmp(0) {
		return best
	}
	return xs[0]
}

// coldSum has no directive: the same constructs stay silent.
func coldSum(xs []float64) string {
	var out []float64
	for _, x := range xs {
		m := map[int]bool{0: true}
		_ = m
		out = append(out, x)
	}
	return fmt.Sprintf("%d", len(out))
}

//botscope:hotpath
func goodPreallocated(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2) // preallocated with capacity: legal
	}
	return out
}

//botscope:hotpath
func goodAppendToParam(dst []int, xs []int) []int {
	for _, x := range xs {
		dst = append(dst, x) // caller owns the buffer: legal
	}
	return dst
}

//botscope:hotpath
func goodSetupOutsideLoop(xs []int) int {
	seen := make(map[int]bool, len(xs)) // one-time setup: legal
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}

//botscope:hotpath
func goodPureKernel(w []float64, mu float64) float64 {
	var sse float64
	for t := range w {
		e := w[t] - mu
		sse += e * e
	}
	return sse
}

//botscope:hotpath
func allowedException(xs []int) string {
	s := fmt.Sprint(len(xs)) //botvet:ignore hotalloc fixture exercises the ignore directive
	return s
}
