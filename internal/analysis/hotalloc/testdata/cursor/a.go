// Package a seeds hotalloc with the column-cursor shapes from the lazy
// dataset load path: value-type views whose accessors are plain column
// loads, scanned by hot loops that must stay allocation-free. A clean
// cursor loop reuses a caller-owned scratch slice (legal); the violating
// variants allocate per row — fresh scratch, formatted labels, boxed
// scalars — exactly the regressions the cursor API exists to avoid.
package a

import "fmt"

type columns struct {
	ids   []uint64
	fams  []int32
	lats  []float64
	lons  []float64
	spans []int32
}

// view is a two-word cursor over one attack row: dereferencing a field
// is an array load, never an allocation.
type view struct {
	c   *columns
	row int
}

func (v view) ID() uint64    { return v.c.ids[v.row] }
func (v view) Family() int32 { return v.c.fams[v.row] }
func (v view) Lat() float64  { return v.c.lats[v.row] }
func (v view) Lon() float64  { return v.c.lons[v.row] }
func (v view) Span() int32   { return v.c.spans[v.row] }

type point struct{ lat, lon float64 }

// appendRowPoints mimics the dispersion kernel: the destination is a
// caller-owned scratch buffer, so the row scan allocates nothing.
//
//botscope:hotpath
func appendRowPoints(dst []point, c *columns, rows []int32) []point {
	for _, row := range rows {
		v := view{c: c, row: int(row)}
		dst = append(dst, point{lat: v.Lat(), lon: v.Lon()}) // caller owns dst: legal
	}
	return dst
}

// sumSpans is the minimal clean cursor scan: per-row views are stack
// values, accessors are column loads, and the accumulator is a scalar.
//
//botscope:hotpath
func sumSpans(c *columns, n int) int64 {
	total := int64(0)
	for i := 0; i < n; i++ {
		v := view{c: c, row: i}
		total += int64(v.Span())
	}
	return total
}

// badScratchPerRow allocates a fresh point buffer for every row instead
// of reusing the caller's scratch — the regression the shared scratch in
// the dispersion scan exists to avoid.
//
//botscope:hotpath
func badScratchPerRow(c *columns, rows []int32) int {
	total := 0
	for _, row := range rows {
		v := view{c: c, row: int(row)}
		pts := make([]point, 1) // want `make allocates every loop iteration`
		pts[0] = point{lat: v.Lat(), lon: v.Lon()}
		total += len(pts)
	}
	return total
}

// badRowLabel formats a label from cursor fields on every row.
//
//botscope:hotpath
func badRowLabel(c *columns, rows []int32) []string {
	var out []string
	for _, row := range rows {
		v := view{c: c, row: int(row)}
		out = append(out, fmt.Sprintf("attack-%d", v.ID())) // want `fmt.Sprintf allocates` `append grows out inside a hot loop`
	}
	return out
}

func sink(v interface{}) {}

// badBoxedField boxes a cursor scalar into an interface parameter, which
// heap-allocates the field load the cursor made free.
//
//botscope:hotpath
func badBoxedField(c *columns, row int) {
	v := view{c: c, row: row}
	sink(v.ID()) // want `scalar uint64 boxed into interface parameter`
}
