// The basic memodisc fixture: marked and unmarked atomic.Pointer slots
// under every publish shape.
package fix

import "sync/atomic"

type rec struct{ id int }

type store struct {
	// cache memoizes the first computed rec.
	//
	//botscope:memo
	cache atomic.Pointer[rec]

	// rows is a per-row memo arena.
	//
	//botscope:memo
	rows []atomic.Pointer[rec]

	// scratch carries no discipline.
	scratch atomic.Pointer[rec]

	//botscope:memo
	gen int // want `not an atomic.Pointer`
}

// get follows the CAS-or-Load discipline: silent.
func get(s *store) *rec {
	if r := s.cache.Load(); r != nil {
		return r
	}
	r := &rec{id: 1}
	if !s.cache.CompareAndSwap(nil, r) {
		return s.cache.Load()
	}
	return r
}

// getRow follows the discipline on a slice element: silent.
func getRow(s *store, i int) *rec {
	if !s.rows[i].CompareAndSwap(nil, &rec{id: i}) {
		return s.rows[i].Load()
	}
	return s.rows[i].Load()
}

func clobber(s *store) {
	s.cache.Store(&rec{})      // want `Store on memo slot cache`
	s.rows[0].Store(&rec{})    // want `Store on memo slot rows`
	_ = s.rows[1].Swap(&rec{}) // want `Swap on memo slot rows`
	s.scratch.Store(&rec{})    // unmarked: free discipline
	_ = s.scratch.Swap(&rec{})
}
