// Consumer half of the cross-package memodisc fixture: discipline on the
// imported slot is enforced at the caller, through the fact.
package use

import slot "botscope/internal/dataset/fix"

// publish follows the discipline: silent.
func publish(b *slot.Box, r *slot.Rec) *slot.Rec {
	if !b.Memo.CompareAndSwap(nil, r) {
		return b.Memo.Load()
	}
	return r
}

func clobber(b *slot.Box, r *slot.Rec) {
	b.Memo.Store(r) // want `Store on memo slot Memo`
}
