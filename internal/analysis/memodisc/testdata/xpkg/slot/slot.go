// Producer half of the cross-package memodisc fixture: the marked slot
// lives here and its fact travels to importers.
package slot

import "sync/atomic"

type Rec struct{ ID int }

type Box struct {
	// Memo is published once and read lock-free.
	//
	//botscope:memo
	Memo atomic.Pointer[Rec]
}
