// Package memodisc defines the columnar-tier botvet analyzer that
// enforces the publish discipline of atomic.Pointer memo slots. A memo
// slot (Store.recRows, the frontend's merged-snapshot cache) is written
// by whoever computes the value first and read lock-free forever after;
// the only safe publish is compare-and-swap-then-load — a plain Store
// can overwrite an already-published value, and two racing writers then
// hand out distinct copies of what every reader must agree is one
// object.
//
// Slots are marked with a "//botscope:memo" directive on the struct
// field (doc comment or line comment); the fact travels across packages.
// On a marked slot — including elements of a marked slice or array of
// atomic.Pointer — the analyzer allows Load and CompareAndSwap and
// reports Store and Swap. Audited exceptions carry
// "//botvet:ignore memodisc <reason>".
package memodisc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/vetutil"
)

// Directive marks an atomic.Pointer struct field as a CAS-or-Load memo
// slot.
const Directive = "botscope:memo"

var Analyzer = &analysis.Analyzer{
	Name:      "memodisc",
	Doc:       "//botscope:memo atomic.Pointer slots are published with CompareAndSwap and read with Load; plain Store/Swap can clobber a published value",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*memoFact)(nil)},
	Run:       run,
}

// memoFact marks a struct field as a memo slot.
type memoFact struct{}

func (*memoFact) AFact()         {}
func (*memoFact) String() string { return "CAS-or-Load memo slot" }

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Collect and export this package's marked fields.
	local := map[types.Object]bool{}
	ins.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
		st := n.(*ast.StructType)
		for _, field := range st.Fields.List {
			if !vetutil.HasDirective(field.Doc, Directive) && !vetutil.HasDirective(field.Comment, Directive) {
				continue
			}
			for _, name := range field.Names {
				obj := pass.TypesInfo.ObjectOf(name)
				if obj == nil {
					continue
				}
				if !isAtomicPointerish(obj.Type()) {
					if !vetutil.IsTestFile(pass.Fset, name.Pos()) {
						pass.Reportf(name.Pos(),
							"//botscope:memo on %s, which is not an atomic.Pointer (or slice/array of them); the directive has no meaning here",
							name.Name)
					}
					continue
				}
				local[obj] = true
				pass.ExportObjectFact(obj, &memoFact{})
			}
		}
	})

	isMemo := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		if local[obj] {
			return true
		}
		return pass.ImportObjectFact(obj, &memoFact{})
	}

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return
		}
		if fn.Name() != "Store" && fn.Name() != "Swap" {
			return
		}
		slot := fieldOf(pass.TypesInfo, sel.X)
		if !isMemo(slot) {
			return
		}
		if vetutil.IsTestFile(pass.Fset, call.Pos()) || vetutil.Suppressed(pass, call.Pos(), "memodisc") {
			return
		}
		pass.Reportf(call.Pos(),
			"%s on memo slot %s can clobber a published value; publish with CompareAndSwap and re-read with Load",
			fn.Name(), slot.Name())
	})
	return nil, nil
}

// fieldOf peels the receiver expression of an atomic method call down to
// the struct field it addresses: s.cache, s.recRows[i], (&s.cache), etc.
func fieldOf(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			obj := info.ObjectOf(x.Sel)
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isAtomicPointerish reports whether t is sync/atomic.Pointer[T], or a
// slice/array of it.
func isAtomicPointerish(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isAtomicPointer(u.Elem())
	case *types.Array:
		return isAtomicPointer(u.Elem())
	}
	return isAtomicPointer(t)
}

func isAtomicPointer(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}
