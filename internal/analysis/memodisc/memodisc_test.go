package memodisc_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/memodisc"
)

// TestBasic covers the in-package shapes: the CAS-or-Load publish
// discipline passes, Store and Swap on marked slots (scalar field and
// slice element alike) are reported, unmarked fields stay free, and the
// directive on a non-atomic.Pointer field is itself diagnosed.
func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", memodisc.Analyzer, "botscope/internal/dataset/fix")
}

// TestCrossPackage proves the slot fact travels: a Store on an imported
// marked field is reported at the caller.
func TestCrossPackage(t *testing.T) {
	atest.RunPkgs(t, memodisc.Analyzer, []atest.Pkg{
		{Dir: "testdata/xpkg/slot", Path: "botscope/internal/dataset/fix"},
		{Dir: "testdata/xpkg/use", Path: "botscope/internal/cluster/fix"},
	})
}
