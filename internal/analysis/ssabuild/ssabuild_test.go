package ssabuild_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/ssabuild"
)

const fixture = `package fix

import "sync"

func loopRecv(ch chan int) {
	for {
		<-ch
	}
}

func selectRecv(a, b chan int, done chan struct{}) {
	for {
		select {
		case <-a:
		case v := <-b:
			_ = v
		case <-done:
			return
		}
	}
}

func oneShot() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

func unbufferedSend(out chan int) {
	out <- 1
}

func worker(wg *sync.WaitGroup, jobs chan int) {
	defer wg.Done()
	for j := range jobs {
		_ = j
	}
}

func launches(wg *sync.WaitGroup, jobs chan int) {
	wg.Add(1)
	go worker(wg, jobs)
}

func deadCode(ch chan int) {
	return
	<-ch
}

func nested() {
	f := func(ch chan int) { <-ch }
	_ = f
}
`

// build type-checks the fixture and runs the buildssa analyzer over it the
// way a driver would, with the inspector result pre-seeded.
func build(t *testing.T) *ssabuild.SSA {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fix.go", fixture, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	files := []*ast.File{file}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fix", fset, files, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pass := &analysis.Pass{
		Analyzer:  ssabuild.Analyzer,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		ResultOf: map[*analysis.Analyzer]any{
			inspect.Analyzer: inspector.New(files),
		},
		Report: func(analysis.Diagnostic) {},
	}
	res, err := ssabuild.Analyzer.Run(pass)
	if err != nil {
		t.Fatalf("buildssa: %v", err)
	}
	return res.(*ssabuild.SSA)
}

func fn(t *testing.T, s *ssabuild.SSA, name string) *ssabuild.Func {
	t.Helper()
	for _, f := range s.Funcs {
		if f.Obj != nil && f.Obj.Name() == name {
			return f
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

func TestLoopReceive(t *testing.T) {
	s := build(t)
	f := fn(t, s, "loopRecv")
	if !f.HasLoop {
		t.Errorf("loopRecv: HasLoop = false, want true")
	}
	if len(f.Recvs) != 1 || !f.Recvs[0].InLoop {
		t.Errorf("loopRecv: Recvs = %+v, want one in-loop receive", f.Recvs)
	}
}

func TestSelectCommMembership(t *testing.T) {
	s := build(t)
	f := fn(t, s, "selectRecv")
	if len(f.Recvs) != 3 {
		t.Fatalf("selectRecv: %d receives, want 3", len(f.Recvs))
	}
	for i, r := range f.Recvs {
		if !r.InSelect {
			t.Errorf("selectRecv: receive %d not marked InSelect", i)
		}
		if !r.InLoop {
			t.Errorf("selectRecv: receive %d not marked InLoop", i)
		}
	}
}

func TestBufferedOneShot(t *testing.T) {
	s := build(t)
	f := fn(t, s, "oneShot")
	if len(f.Gos) != 1 || f.Gos[0].Lit == nil {
		t.Fatalf("oneShot: Gos = %+v, want one literal launch", f.Gos)
	}
	lit := s.FuncFor(f.Gos[0].Lit)
	if lit == nil {
		t.Fatal("oneShot: no summary for launched literal")
	}
	if lit.HasLoop {
		t.Errorf("oneShot literal: HasLoop = true, want false")
	}
	if len(lit.Sends) != 1 || !lit.Sends[0].Buffered {
		t.Errorf("oneShot literal: Sends = %+v, want one buffered send", lit.Sends)
	}
}

func TestUnbufferedSend(t *testing.T) {
	s := build(t)
	f := fn(t, s, "unbufferedSend")
	if len(f.Sends) != 1 || f.Sends[0].Buffered {
		t.Errorf("unbufferedSend: Sends = %+v, want one unbuffered send", f.Sends)
	}
}

func TestWorkerJoinShape(t *testing.T) {
	s := build(t)
	f := fn(t, s, "worker")
	if len(f.Recvs) != 1 {
		t.Errorf("worker: %d receives, want 1 (range over jobs)", len(f.Recvs))
	}
	var sawDone, deferredDone bool
	for _, c := range f.Calls {
		if c.Callee != nil && c.Callee.Name() == "Done" {
			sawDone = true
			deferredDone = c.Deferred
		}
	}
	if !sawDone || !deferredDone {
		t.Errorf("worker: WaitGroup.Done call not recorded as deferred (saw=%v deferred=%v)", sawDone, deferredDone)
	}
}

func TestNamedLaunchResolved(t *testing.T) {
	s := build(t)
	f := fn(t, s, "launches")
	if len(f.Gos) != 1 || f.Gos[0].Callee == nil || f.Gos[0].Callee.Name() != "worker" {
		t.Fatalf("launches: Gos = %+v, want one launch of worker", f.Gos)
	}
	if target := s.FuncOf(f.Gos[0].Callee); target == nil || target != fn(t, s, "worker") {
		t.Errorf("FuncOf(worker) did not resolve to worker's summary")
	}
}

func TestDeadCodeExcluded(t *testing.T) {
	s := build(t)
	f := fn(t, s, "deadCode")
	if len(f.Recvs) != 0 {
		t.Errorf("deadCode: receive after return kept (%+v); dead ops must be dropped", f.Recvs)
	}
}

func TestNestedLiteralSeparation(t *testing.T) {
	s := build(t)
	f := fn(t, s, "nested")
	if len(f.Recvs) != 0 {
		t.Errorf("nested: outer function owns the literal's receive (%+v)", f.Recvs)
	}
	var lit *ssabuild.Func
	for _, g := range s.Funcs {
		if g.Obj == nil {
			if _, ok := g.Node.(*ast.FuncLit); ok && g.Body.Pos() > f.Body.Pos() && g.Body.End() < f.Body.End() {
				lit = g
			}
		}
	}
	if lit == nil || len(lit.Recvs) != 1 {
		t.Errorf("nested literal summary missing its receive")
	}
}
