// Package ssabuild is the builder pass of botvet's second, SSA-based
// analyzer tier. For every function in the package (declarations and
// literals alike) it constructs the control-flow graph with the vendored
// golang.org/x/tools/go/cfg and distills an SSA-form summary: the list of
// channel operations, calls, and goroutine launches *reachable from the
// function's entry*, each annotated with whether it executes inside a CFG
// cycle and inside a select communication clause. Dead code is excluded by
// construction (ops in non-live blocks are dropped), which is what lifts
// the consuming analyzers — goleak, ctxflow — from "the body mentions X
// somewhere" to "X is provably executed on some path", and their facts
// carry those proofs across package boundaries.
//
// The full golang.org/x/tools/go/ssa builder is not part of the offline
// vendored subset this repo pins, so the tier builds its SSA form on
// go/cfg: basic blocks with liveness, plus flow-insensitive value
// summaries (buffered-channel provenance, static callees) resolved through
// go/types. That is deliberately the fragment the three interprocedural
// analyzers need — see DESIGN.md "static-gate contracts".
package ssabuild

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"
)

// Analyzer builds the per-package SSA-form summaries. It reports nothing
// itself; the interprocedural analyzers require it and consume its result.
var Analyzer = &analysis.Analyzer{
	Name:       "buildssa",
	Doc:        "build SSA-form function summaries (CFGs plus reachable-operation lists) for the interprocedural botvet tier",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: reflect.TypeOf((*SSA)(nil)),
	Run:        run,
}

// SSA is the package-wide result: one summary per function body.
type SSA struct {
	Funcs []*Func

	byNode map[ast.Node]*Func
	byObj  map[*types.Func]*Func
}

// FuncFor returns the summary for a *ast.FuncDecl or *ast.FuncLit, or nil.
func (s *SSA) FuncFor(n ast.Node) *Func { return s.byNode[n] }

// FuncOf returns the summary for a function or method declared in this
// package, or nil (cross-package callees are resolved through facts).
func (s *SSA) FuncOf(obj *types.Func) *Func { return s.byObj[obj] }

// Func is one function's SSA-form summary. The op lists hold only
// operations reachable from entry: an op in dead code never appears.
type Func struct {
	Node ast.Node    // *ast.FuncDecl or *ast.FuncLit
	Obj  *types.Func // declared object; nil for literals
	Sig  *types.Signature
	Body *ast.BlockStmt
	CFG  *cfg.CFG

	Recvs []Op   // channel receives: <-ch, range over a channel, select comm
	Sends []Op   // channel sends
	Calls []Call // static and dynamic calls (Callee nil when dynamic)
	Gos   []Go   // go statements

	// HasLoop is true when some live CFG block lies on a cycle.
	HasLoop bool
}

// Name returns a human-readable name for diagnostics.
func (f *Func) Name() string {
	if f.Obj != nil {
		return f.Obj.Name()
	}
	return "function literal"
}

// Op is one reachable channel operation.
type Op struct {
	Node     ast.Node
	InLoop   bool // executes inside a CFG cycle
	InSelect bool // lies in a select communication clause
	// Buffered is set on sends whose channel is provably a locally made
	// buffered channel (make(chan T, c) with constant c >= 1 and no other
	// assignment anywhere in the package).
	Buffered bool
}

// Call is one reachable call site.
type Call struct {
	Node     *ast.CallExpr
	Callee   *types.Func // static callee; nil for dynamic calls
	InLoop   bool
	InSelect bool // evaluated as part of a select communication clause
	Deferred bool
}

// Go is one reachable goroutine launch.
type Go struct {
	Node   *ast.GoStmt
	Lit    *ast.FuncLit // go func(){...}(); nil for named launches
	Callee *types.Func  // go f(...) / go x.M(...); nil for literals and dynamic targets
	InLoop bool
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	buffered := bufferedChans(ins, pass.TypesInfo)
	s := &SSA{byNode: map[ast.Node]*Func{}, byObj: map[*types.Func]*Func{}}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var obj *types.Func
		var sig *types.Signature
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
			obj, _ = pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj != nil {
				sig, _ = obj.Type().(*types.Signature)
			}
		case *ast.FuncLit:
			body = fn.Body
			if tv, ok := pass.TypesInfo.Types[fn]; ok {
				sig, _ = tv.Type.(*types.Signature)
			}
		}
		if body == nil {
			return
		}
		f := buildFunc(pass, n, body, obj, sig, buffered)
		s.Funcs = append(s.Funcs, f)
		s.byNode[n] = f
		if obj != nil {
			s.byObj[obj] = f
		}
	})
	return s, nil
}

// buildFunc constructs one summary: CFG, cycle analysis, then a walk of
// the body that keeps only ops mapping into live blocks.
func buildFunc(pass *analysis.Pass, node ast.Node, body *ast.BlockStmt, obj *types.Func, sig *types.Signature, buffered map[types.Object]bool) *Func {
	f := &Func{Node: node, Obj: obj, Sig: sig, Body: body}
	f.CFG = cfg.New(body, mayReturn(pass))

	// A block lies on a cycle iff it can reach itself.
	inCycle := make([]bool, len(f.CFG.Blocks))
	for _, b := range f.CFG.Blocks {
		if b.Live && reaches(b, b) {
			inCycle[b.Index] = true
			f.HasLoop = true
		}
	}

	// Index every block node's source range so ops found in the AST walk
	// can be placed (node ranges within one function never partially
	// overlap: the narrowest containing range wins).
	type span struct {
		pos, end token.Pos
		live     bool
		cycle    bool
	}
	var spans []span
	for _, b := range f.CFG.Blocks {
		for _, n := range b.Nodes {
			spans = append(spans, span{n.Pos(), n.End(), b.Live, inCycle[b.Index]})
		}
	}
	place := func(n ast.Node) (live, cycle bool) {
		best := -1
		for i, sp := range spans {
			if sp.pos <= n.Pos() && n.End() <= sp.end {
				if best < 0 || sp.pos > spans[best].pos || sp.end < spans[best].end {
					best = i
				}
			}
		}
		if best < 0 {
			// Control-statement scaffolding not materialized in any block
			// (e.g. an empty clause): assume reachable, not looping.
			return true, false
		}
		return spans[best].live, spans[best].cycle
	}

	// Select communication clauses, by source range: the CFG evaluates
	// comm expressions in the block preceding the select, so membership is
	// recovered positionally.
	var comms []span
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != node {
			return false // nested literals get their own summary
		}
		if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
			comms = append(comms, span{pos: cc.Comm.Pos(), end: cc.Comm.End()})
		}
		return true
	})
	inComm := func(n ast.Node) bool {
		for _, c := range comms {
			if c.pos <= n.Pos() && n.End() <= c.end {
				return true
			}
		}
		return false
	}

	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				return x == node // nested literals are separate functions
			case *ast.DeferStmt:
				walk(x.Call, true)
				return false
			case *ast.GoStmt:
				live, cycle := place(x)
				if live {
					g := Go{Node: x, InLoop: cycle}
					switch fun := ast.Unparen(x.Call.Fun).(type) {
					case *ast.FuncLit:
						g.Lit = fun
					default:
						g.Callee = typeutil.StaticCallee(pass.TypesInfo, x.Call)
					}
					f.Gos = append(f.Gos, g)
				}
				// Arguments are evaluated by the launching goroutine.
				for _, arg := range x.Call.Args {
					walk(arg, deferred)
				}
				return false
			case *ast.SendStmt:
				if live, cycle := place(x); live {
					f.Sends = append(f.Sends, Op{
						Node: x, InLoop: cycle, InSelect: inComm(x),
						Buffered: buffered[chanObj(pass.TypesInfo, x.Chan)],
					})
				}
				return true
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					if live, cycle := place(x); live {
						f.Recvs = append(f.Recvs, Op{Node: x, InLoop: cycle, InSelect: inComm(x)})
					}
				}
				return true
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[x.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						if live, cycle := place(x.X); live {
							f.Recvs = append(f.Recvs, Op{Node: x, InLoop: cycle})
						}
					}
				}
				return true
			case *ast.CallExpr:
				if live, cycle := place(x); live {
					f.Calls = append(f.Calls, Call{
						Node:   x,
						Callee: typeutil.StaticCallee(pass.TypesInfo, x),
						InLoop: cycle, InSelect: inComm(x), Deferred: deferred,
					})
				}
				return true
			}
			return true
		})
	}
	walk(body, false)
	return f
}

// reaches reports whether dst is reachable from src's successors.
func reaches(src, dst *cfg.Block) bool {
	seen := map[*cfg.Block]bool{}
	var stack []*cfg.Block
	stack = append(stack, src.Succs...)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == dst {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

// bufferedChans resolves, flow-insensitively but package-wide, the set of
// variables that only ever hold a buffered channel from a constant-capacity
// make. A variable assigned anything else (or a zero/non-constant capacity)
// never qualifies.
func bufferedChans(ins *inspector.Inspector, info *types.Info) map[types.Object]bool {
	state := map[types.Object]int{} // 1 = all makes buffered, -1 = disqualified
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
			return
		}
		if rhs != nil && isBufferedMake(info, rhs) && state[obj] >= 0 {
			state[obj] = 1
			return
		}
		state[obj] = -1
	}
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil)}, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				for _, l := range x.Lhs {
					record(l, nil)
				}
				return
			}
			for i, l := range x.Lhs {
				record(l, x.Rhs[i])
			}
		case *ast.ValueSpec:
			if len(x.Names) != len(x.Values) {
				return // zero values: nil channels, irrelevant
			}
			for i, name := range x.Names {
				record(name, x.Values[i])
			}
		}
	})
	out := make(map[types.Object]bool)
	for obj, st := range state {
		if st == 1 {
			out[obj] = true
		}
	}
	return out
}

// isBufferedMake reports whether e is make(chan T, c) with constant c >= 1.
func isBufferedMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	if v, exact := constantInt(tv); exact && v >= 1 {
		return true
	}
	return false
}

func constantInt(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	s := tv.Value.ExactString()
	var v int64
	neg := false
	for i, r := range s {
		if i == 0 && r == '-' {
			neg = true
			continue
		}
		if r < '0' || r > '9' {
			return 0, false
		}
		v = v*10 + int64(r-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// chanObj peels the channel operand of a send down to its root object.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			// A field-held channel: resolve the field object itself so
			// package-wide make-tracking can still disqualify it.
			return info.ObjectOf(x.Sel)
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mayReturn is the CFG builder's no-return oracle: panic, os.Exit,
// runtime.Goexit, and log.Fatal* terminate control flow.
func mayReturn(pass *analysis.Pass) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin && id.Name == "panic" {
				return false
			}
		}
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() != "Exit"
		case "runtime":
			return fn.Name() != "Goexit"
		case "log":
			return !strings.HasPrefix(fn.Name(), "Fatal") && fn.Name() != "Panic" && fn.Name() != "Panicf" && fn.Name() != "Panicln"
		}
		return true
	}
}
