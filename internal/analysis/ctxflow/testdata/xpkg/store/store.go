// Producer half of the cross-package ctxflow fixture: Connect is
// context-less and manufactures its own background context, which exports
// a fact consumers see.
package store

import "context"

func Connect(addr string) error {
	ctx := context.Background() // want `below the handler layer`
	_ = ctx
	_ = addr
	return nil
}

func Ping(ctx context.Context) error {
	_ = ctx
	return nil
}
