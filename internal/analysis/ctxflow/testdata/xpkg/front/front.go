// Consumer half of the cross-package ctxflow fixture: a ctx-holding
// handler calling a context-less function known (by fact) to create its
// own background context is flagged at the call site.
package front

import (
	"context"

	"botscope/internal/cluster/store"
)

func Handle(ctx context.Context) error {
	if err := store.Connect("shard-0"); err != nil { // want `discards ctx: it creates its own background context`
		return err
	}
	return store.Ping(ctx)
}
