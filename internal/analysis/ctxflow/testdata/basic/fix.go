// Fixture for the ctxflow analyzer: contexts must be threaded from the
// edge; fresh background contexts below the handler layer are flagged.
package fix

import (
	"context"
	"net/http"
)

// --- positives ---

func handler(ctx context.Context) {
	c := context.Background() // want `below the edge discards the in-scope ctx`
	_ = c
	_ = ctx
}

func httpHandler(w http.ResponseWriter, r *http.Request) {
	c := context.TODO() // want `below the edge discards the in-scope ctx`
	_ = c
	_ = w
}

func dropsDeadline(ctx context.Context) {
	do(context.Background()) // want `deadline dropped: do receives a fresh context.Background`
	_ = ctx
}

func helper() {
	c := context.Background() // want `below the handler layer`
	_ = c
}

func helperPassing() {
	do(context.TODO()) // want `context.TODO\(\) passed to do below the handler layer`
}

// --- negatives ---

func do(ctx context.Context) { _ = ctx }

func threaded(ctx context.Context) {
	do(ctx)
}

func detached(ctx context.Context) {
	do(context.WithoutCancel(ctx)) // explicit detachment is the sanctioned form
}

func audited(ctx context.Context) {
	c := context.Background() //botvet:ignore ctxflow server-lifetime root context, audited
	_ = c
	_ = ctx
}
