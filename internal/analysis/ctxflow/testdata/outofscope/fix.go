// Out-of-scope fixture: identical violations to testdata/basic, but the
// test assigns this package a path outside the cluster/serve plane, so
// ctxflow must stay silent. No want comments on purpose.
package fix

import "context"

func handler(ctx context.Context) {
	c := context.Background()
	_ = c
	_ = ctx
}

func helper() {
	c := context.TODO()
	_ = c
}
