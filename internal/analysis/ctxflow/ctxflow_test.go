package ctxflow_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/ctxflow"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", ctxflow.Analyzer, "botscope/internal/cluster/fix")
}

// TestOutOfScope pins the package gate: the same violations outside the
// cluster/serve plane stay silent.
func TestOutOfScope(t *testing.T) {
	atest.Run(t, "testdata/outofscope", ctxflow.Analyzer, "botscope/internal/dataset/fix")
}

// TestCrossPackage proves the bgFact flows from a context-less producer to
// the ctx-holding caller in another package.
func TestCrossPackage(t *testing.T) {
	atest.RunPkgs(t, ctxflow.Analyzer, []atest.Pkg{
		{Dir: "testdata/xpkg/store", Path: "botscope/internal/cluster/store"},
		{Dir: "testdata/xpkg/front", Path: "botscope/internal/serve/front"},
	})
}
