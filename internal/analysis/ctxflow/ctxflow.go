// Package ctxflow defines the SSA-tier botvet analyzer that keeps
// context.Context threaded from the edge of the cluster plane down to
// every shard client call. In the sharded serve tier a dropped context is
// an unbounded RPC: the handler's deadline and the client's disconnect
// stop propagating, and a slow shard pins frontend resources forever.
//
// Within the scoped packages (default: internal/cluster and
// internal/serve), outside tests, the analyzer reports:
//
//   - context.Background() / context.TODO() in any function that already
//     has a context in scope (a context.Context or *http.Request
//     parameter) — the deadline was there and was severed; thread ctx, or
//     make the detachment explicit with context.WithoutCancel(ctx);
//   - context.Background() / context.TODO() in functions below the
//     handler layer with no context parameter — accept one and thread it
//     (documented non-cancellable entry points carry an audited ignore);
//   - context.Background() / context.TODO() passed directly as the
//     context argument of a call — the deadline is dropped across that
//     specific call even though the caller holds a live ctx;
//   - interprocedurally, a call from a ctx-holding function into a
//     context-less function (in another package) that is known — via an
//     exported fact — to manufacture its own background context below the
//     edge.
//
// Audited exceptions carry "//botvet:ignore ctxflow <reason>".
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"botscope/internal/analysis/ssabuild"
	"botscope/internal/analysis/vetutil"
)

const defaultScope = "botscope/internal/cluster,botscope/internal/serve"

var Analyzer = &analysis.Analyzer{
	Name:      "ctxflow",
	Doc:       "keep context.Context threaded from the request edge through the cluster plane; no fresh background contexts below the handler layer",
	Requires:  []*analysis.Analyzer{ssabuild.Analyzer},
	FactTypes: []analysis.Fact{(*bgFact)(nil)},
	Run:       run,
}

var scopeFlag string

func init() {
	Analyzer.Flags.StringVar(&scopeFlag, "pkgs", defaultScope,
		"comma-separated import paths (with subpackages) the analyzer applies to")
}

// bgFact marks a context-less function that (transitively) creates its own
// background context below the edge; ctx-holding callers in other packages
// are flagged at the call site.
type bgFact struct{}

func (*bgFact) AFact()         {}
func (*bgFact) String() string { return "creates background context" }

type checker struct {
	pass *analysis.Pass
	ssa  *ssabuild.SSA
	memo map[*ssabuild.Func]bool
}

func run(pass *analysis.Pass) (any, error) {
	if !vetutil.InScope(pass.Pkg.Path(), vetutil.SplitList(scopeFlag)) {
		return nil, nil
	}
	c := &checker{
		pass: pass,
		ssa:  pass.ResultOf[ssabuild.Analyzer].(*ssabuild.SSA),
		memo: map[*ssabuild.Func]bool{},
	}

	// Facts first: context-less functions that manufacture a context.
	for _, f := range c.ssa.Funcs {
		if f.Obj != nil && !hasCarrier(f.Sig) && c.usesBackground(f, map[*ssabuild.Func]bool{}) {
			pass.ExportObjectFact(f.Obj, &bgFact{})
		}
	}

	for _, f := range c.ssa.Funcs {
		c.checkFunc(f)
	}
	return nil, nil
}

func (c *checker) checkFunc(f *ssabuild.Func) {
	carrier := hasCarrier(f.Sig)

	// Background/TODO calls passed directly as a context argument: the
	// most precise diagnostic, reported once per site.
	dropped := map[*ast.CallExpr]bool{}
	for _, call := range f.Calls {
		if call.Callee == nil {
			continue
		}
		sig, ok := call.Callee.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i, arg := range call.Node.Args {
			argCall, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			name, isBG := backgroundName(c.pass.TypesInfo, argCall)
			if !isBG || i >= sig.Params().Len() || !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			dropped[argCall] = true
			if c.skip(argCall.Pos()) {
				continue
			}
			if carrier {
				c.pass.Reportf(argCall.Pos(),
					"deadline dropped: %s receives a fresh context.%s() while the caller's ctx is in scope; pass ctx (or context.WithoutCancel(ctx)) instead",
					call.Callee.Name(), name)
			} else {
				c.pass.Reportf(argCall.Pos(),
					"context.%s() passed to %s below the handler layer; accept a context.Context parameter and thread it from the edge",
					name, call.Callee.Name())
			}
		}
	}

	for _, call := range f.Calls {
		if call.Callee == nil {
			continue
		}
		if name, isBG := backgroundName(c.pass.TypesInfo, call.Node); isBG && !dropped[call.Node] {
			if c.skip(call.Node.Pos()) {
				continue
			}
			if carrier {
				c.pass.Reportf(call.Node.Pos(),
					"context.%s() below the edge discards the in-scope ctx; thread ctx (or context.WithoutCancel(ctx) to detach explicitly)", name)
			} else {
				c.pass.Reportf(call.Node.Pos(),
					"context.%s() below the handler layer: accept a context.Context from the caller and thread it", name)
			}
			continue
		}
		// Interprocedural: a ctx-holding function calling into another
		// package's context-less function that manufactures its own.
		if carrier && call.Callee.Pkg() != nil && call.Callee.Pkg() != c.pass.Pkg {
			if sigHasCarrier(call.Callee) {
				continue
			}
			if c.pass.ImportObjectFact(call.Callee, &bgFact{}) && !c.skip(call.Node.Pos()) {
				c.pass.Reportf(call.Node.Pos(),
					"call to %s.%s discards ctx: it creates its own background context below the edge; thread ctx through it",
					call.Callee.Pkg().Name(), call.Callee.Name())
			}
		}
	}
}

func (c *checker) skip(pos token.Pos) bool {
	return vetutil.IsTestFile(c.pass.Fset, pos) || vetutil.Suppressed(c.pass, pos, "ctxflow")
}

// usesBackground reports whether f reaches a (non-audited) background
// context creation, directly or through context-less callees.
func (c *checker) usesBackground(f *ssabuild.Func, visited map[*ssabuild.Func]bool) bool {
	if v, ok := c.memo[f]; ok {
		return v
	}
	if visited[f] {
		return false
	}
	visited[f] = true
	ok := c.decideBackground(f, visited)
	delete(visited, f)
	c.memo[f] = ok
	return ok
}

func (c *checker) decideBackground(f *ssabuild.Func, visited map[*ssabuild.Func]bool) bool {
	for _, call := range f.Calls {
		if call.Callee == nil {
			continue
		}
		if _, isBG := backgroundName(c.pass.TypesInfo, call.Node); isBG {
			if c.skip(call.Node.Pos()) {
				continue // audited: the exception must not propagate
			}
			return true
		}
		if sigHasCarrier(call.Callee) {
			continue // the callee threads a ctx; its body is its own problem
		}
		if target := c.ssa.FuncOf(call.Callee); target != nil {
			if c.usesBackground(target, visited) {
				return true
			}
			continue
		}
		if call.Callee.Pkg() != nil && call.Callee.Pkg() != c.pass.Pkg {
			if c.pass.ImportObjectFact(call.Callee, &bgFact{}) {
				return true
			}
		}
	}
	return false
}

// backgroundName matches context.Background() / context.TODO() calls,
// returning the function name.
func backgroundName(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// hasCarrier reports whether the signature carries a context: a
// context.Context or *http.Request parameter.
func hasCarrier(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isContextType(t) || isHTTPRequest(t) {
			return true
		}
	}
	return false
}

func sigHasCarrier(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && hasCarrier(sig)
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequest(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}
