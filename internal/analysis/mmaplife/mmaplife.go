// Package mmaplife defines the columnar-tier botvet analyzer that keeps
// mmap-backed column views inside the owning Store's lifetime. Since the
// snapshot load path maps the .bscs file read-only and hands out slices
// and cursor views that alias the mapping (the cursor.go accessors, the
// refIPs arena, the target-row spans), any such value retained past
// Store.Close() is a use-after-unmap: the page is gone and the next read
// is a SIGSEGV, not an error.
//
// Producers are marked with a "//botscope:mmap" doc directive; the fact
// travels across packages. A value assigned from a producer call — or
// re-sliced / re-assigned from one — is "mmap-scoped", and the analyzer
// reports the three retention shapes that outlive a lexical scope:
//
//   - storing an mmap-scoped value into a package-level variable;
//   - passing one into a goroutine (argument or closure capture) unless
//     the launch is annotated "//botscope:pinned" on the go statement,
//     the caller's declaration that the Store provably outlives the
//     goroutine;
//   - returning one from an exported function that carries no documented
//     aliasing contract ("//botscope:mmap" or "//botscope:shared" in its
//     doc comment).
//
// Scalar loads (ints, floats, strings, bools) are copies and never
// scoped. Audited exceptions carry "//botvet:ignore mmaplife <reason>".
package mmaplife

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"botscope/internal/analysis/ssabuild"
	"botscope/internal/analysis/vetutil"
)

// Directive marks a function or method whose results alias the mmap-backed
// column store and share its lifetime.
const Directive = "botscope:mmap"

// PinDirective marks a go statement whose goroutine provably ends before
// the owning Store is closed.
const PinDirective = "botscope:pinned"

var Analyzer = &analysis.Analyzer{
	Name:      "mmaplife",
	Doc:       "mmap-backed column views (//botscope:mmap producers) must not outlive the owning Store: no package-level stores, no unpinned goroutine captures, no undocumented exported returns",
	Requires:  []*analysis.Analyzer{ssabuild.Analyzer},
	FactTypes: []analysis.Fact{(*mmapFact)(nil)},
	Run:       run,
}

// mmapFact marks a function whose results are mmap-scoped.
type mmapFact struct{}

func (*mmapFact) AFact()         {}
func (*mmapFact) String() string { return "returns mmap-scoped column data" }

type checker struct {
	pass *analysis.Pass
	ssa  *ssabuild.SSA
	// producers holds this package's directive-marked functions; imported
	// ones are resolved through facts.
	producers map[*types.Func]bool
	// docs maps declared functions to their doc comments, for the
	// exported-return aliasing-contract check.
	docs map[*types.Func]*ast.CommentGroup
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:      pass,
		ssa:       pass.ResultOf[ssabuild.Analyzer].(*ssabuild.SSA),
		producers: map[*types.Func]bool{},
		docs:      map[*types.Func]*ast.CommentGroup{},
	}

	// Collect and export producer facts first so that dependent packages
	// (and later phases here) can resolve them.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			c.docs[obj] = fd.Doc
			if vetutil.HasDirective(fd.Doc, Directive) {
				c.producers[obj] = true
				pass.ExportObjectFact(obj, &mmapFact{})
			}
		}
	}

	c.checkPackageInits()
	for _, f := range c.ssa.Funcs {
		c.checkFunc(f)
	}
	return nil, nil
}

func (c *checker) skip(pos token.Pos) bool {
	return vetutil.IsTestFile(c.pass.Fset, pos) || vetutil.Suppressed(c.pass, pos, "mmaplife")
}

// isProducer reports whether fn is a directive-marked producer, local or
// imported.
func (c *checker) isProducer(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if c.producers[fn] {
		return true
	}
	return c.pass.ImportObjectFact(fn, &mmapFact{})
}

// retainable reports whether t is worth lifetime-tracking: scalar copies
// (numbers, strings, bools) detach from the mapping, everything else —
// slices, views, pointers — can alias it.
func retainable(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()&(types.IsNumeric|types.IsString|types.IsBoolean) == 0
	}
	return true
}

// scopedExpr reports whether e evaluates to an mmap-scoped value given the
// current scoped-variable set: a producer call, a scoped identifier, or a
// slice/index/paren/conversion chain over one.
func (c *checker) scopedExpr(e ast.Expr, scoped map[types.Object]bool) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if ok && !retainable(tv.Type) {
		return false
	}
	switch x := e.(type) {
	case *ast.Ident:
		return scoped[c.pass.TypesInfo.ObjectOf(x)]
	case *ast.ParenExpr:
		return c.scopedExpr(x.X, scoped)
	case *ast.SliceExpr:
		return c.scopedExpr(x.X, scoped)
	case *ast.IndexExpr:
		return c.scopedExpr(x.X, scoped)
	case *ast.CallExpr:
		if fn := staticCallee(c.pass.TypesInfo, x); fn != nil {
			return c.isProducer(fn)
		}
		// A conversion keeps the backing array; unwrap it.
		if len(x.Args) == 1 {
			if tf, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tf.IsType() {
				return c.scopedExpr(x.Args[0], scoped)
			}
		}
		return false
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.scopedExpr(x.X, scoped)
		}
	}
	return false
}

// scopedSet computes, to a small fixpoint, the local variables of body
// that hold mmap-scoped values.
func (c *checker) scopedSet(body *ast.BlockStmt, node ast.Node) map[types.Object]bool {
	scoped := map[types.Object]bool{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := c.pass.TypesInfo.ObjectOf(id)
		if obj == nil || !retainable(obj.Type()) {
			return
		}
		if c.scopedExpr(rhs, scoped) {
			scoped[obj] = true
		}
	}
	for i := 0; i < 4; i++ {
		before := len(scoped)
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit != node {
				return false // nested literals are their own functions
			}
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for j, l := range x.Lhs {
						record(l, x.Rhs[j])
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) == len(x.Values) {
					for j, name := range x.Names {
						record(name, x.Values[j])
					}
				}
			}
			return true
		})
		if len(scoped) == before {
			break
		}
	}
	return scoped
}

// checkPackageInits flags package-level variables initialized directly
// from a producer call — retention by construction, with no owning frame
// at all.
func (c *checker) checkPackageInits() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, v := range vs.Values {
					if c.scopedExpr(v, nil) && !c.skip(v.Pos()) {
						c.pass.Reportf(v.Pos(),
							"mmap-scoped value stored in package-level variable %s: the column view outlives every Store; copy the data instead",
							vs.Names[i].Name)
					}
				}
			}
		}
	}
}

func (c *checker) checkFunc(f *ssabuild.Func) {
	scoped := c.scopedSet(f.Body, f.Node)

	// Rule 1: stores into package-level variables.
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != f.Node {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			if !c.scopedExpr(as.Rhs[i], scoped) {
				continue
			}
			root := vetutil.SelectorBase(c.pass.TypesInfo, l)
			if root == nil || root.Parent() != c.pass.Pkg.Scope() {
				continue
			}
			if c.skip(as.Pos()) {
				continue
			}
			c.pass.Reportf(as.Pos(),
				"mmap-scoped value stored in package-level variable %s: the column view outlives every Store; copy the data instead",
				root.Name())
		}
		return true
	})

	// Rule 2: goroutine launches that carry a scoped value out of the
	// frame, unless pinned.
	for _, g := range f.Gos {
		if vetutil.LineDirective(c.pass, g.Node.Pos(), PinDirective) {
			continue
		}
		for _, arg := range g.Node.Call.Args {
			if c.scopedExpr(arg, scoped) && !c.skip(g.Node.Pos()) {
				c.pass.Reportf(g.Node.Pos(),
					"mmap-scoped value passed into a goroutine: the view may outlive the Store; annotate //botscope:pinned if the Store provably survives it, or copy the data")
			}
		}
		if g.Lit == nil {
			continue
		}
		reported := false
		ast.Inspect(g.Lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || reported {
				return !reported
			}
			obj := c.pass.TypesInfo.ObjectOf(id)
			if obj == nil || !scoped[obj] {
				return true
			}
			if vetutil.DeclaredWithin(obj, g.Lit.Pos(), g.Lit.End()) {
				return true // the literal's own variable, not a capture
			}
			if !c.skip(g.Node.Pos()) {
				c.pass.Reportf(g.Node.Pos(),
					"goroutine captures mmap-scoped %s: the view may outlive the Store; annotate //botscope:pinned if the Store provably survives it, or copy the data", obj.Name())
			}
			reported = true
			return false
		})
	}

	// Rule 3: exported functions returning scoped values without a
	// documented aliasing contract.
	if f.Obj == nil || !f.Obj.Exported() {
		return
	}
	if doc := c.docs[f.Obj]; vetutil.HasDirective(doc, Directive) || vetutil.HasDirective(doc, "botscope:shared") {
		return
	}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != f.Node {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if c.scopedExpr(res, scoped) && !c.skip(ret.Pos()) {
				c.pass.Reportf(ret.Pos(),
					"exported %s returns an mmap-scoped value without an aliasing contract; document it with //botscope:mmap (or //botscope:shared) or return a copy",
					f.Obj.Name())
			}
		}
		return true
	})
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}
