// The basic mmaplife fixture: one package holding a store with
// //botscope:mmap producers and every retention shape the analyzer
// classifies.
package fix

type columns struct {
	rows []int32
	strs []string
}

type Store struct {
	cols *columns
}

// TargetRows hands out a row span aliasing the mapped region.
//
//botscope:mmap
func (s *Store) TargetRows(tid int32) []int32 {
	return s.cols.rows
}

// BootRows is a package-function producer.
//
//botscope:mmap
func BootRows() []int32 { return nil }

var leakedInit = BootRows() // want `package-level variable leakedInit`

var leaked []int32
var leakedSub []int32

func storeGlobal(s *Store) {
	leaked = s.TargetRows(1) // want `package-level variable leaked`
}

func storeDerived(s *Store) {
	rows := s.TargetRows(1)
	sub := rows[1:]
	leakedSub = sub // want `package-level variable leakedSub`
}

func consume(rows []int32) {}

func launchArg(s *Store) {
	rows := s.TargetRows(1)
	go consume(rows) // want `passed into a goroutine`
}

func launchPinned(s *Store) {
	rows := s.TargetRows(1)
	//botscope:pinned
	go consume(rows)
}

func launchCapture(s *Store) {
	rows := s.TargetRows(1)
	go func() { // want `goroutine captures mmap-scoped rows`
		consume(rows)
	}()
}

func launchCapturePinned(s *Store) {
	rows := s.TargetRows(1)
	//botscope:pinned
	go func() {
		consume(rows)
	}()
}

// Rows re-exports the span with no aliasing contract.
func Rows(s *Store) []int32 {
	return s.TargetRows(0) // want `aliasing contract`
}

// SharedRows documents the aliasing.
//
//botscope:shared
func SharedRows(s *Store) []int32 {
	return s.TargetRows(0)
}

// CopyRows detaches from the mapping; append allocates fresh backing.
func CopyRows(s *Store) []int32 {
	return append([]int32(nil), s.TargetRows(0)...)
}

// Scalar loads are copies: never scoped, never reported.
func count(s *Store) int {
	rows := s.TargetRows(0)
	v := rows[0]
	go consume([]int32{v})
	return len(rows)
}

// rowsLocal keeps the view inside the frame: silent.
func rowsLocal(s *Store) int {
	rows := s.TargetRows(2)
	total := 0
	for _, r := range rows {
		total += int(r)
	}
	return total
}
