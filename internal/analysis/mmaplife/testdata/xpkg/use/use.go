// Consumer half of the cross-package mmaplife fixture: retention of an
// imported producer's views is reported here, through the fact.
package use

import store "botscope/internal/dataset/fix"

var leak []int32

func keep(s *store.Store) {
	leak = s.Rows() // want `package-level variable leak`
}

// Span re-exports the view with no contract.
func Span(s *store.Store) []int32 {
	return s.Rows() // want `aliasing contract`
}

// Sum stays inside the frame: silent.
func Sum(s *store.Store) int {
	total := 0
	for _, r := range s.Rows() {
		total += int(r)
	}
	return total
}
