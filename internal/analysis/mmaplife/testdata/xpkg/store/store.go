// Producer half of the cross-package mmaplife fixture: the annotated
// accessor lives here and its fact travels to importers.
package store

type Store struct {
	rows []int32
}

// Rows hands out the mmap-scoped row arena.
//
//botscope:mmap
func (s *Store) Rows() []int32 { return s.rows }
