package mmaplife_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/mmaplife"
)

// TestBasic covers the three retention shapes over an in-package
// //botscope:mmap producer: package-level stores, goroutine captures and
// arguments (pinned and unpinned), and undocumented exported returns —
// plus the safe shapes (scalar loads, local use, documented aliasing)
// that must stay silent.
func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", mmaplife.Analyzer, "botscope/internal/dataset/fix")
}

// TestCrossPackage proves the producer fact travels: a consumer package
// retaining views from an imported //botscope:mmap producer is reported
// at the retention site.
func TestCrossPackage(t *testing.T) {
	atest.RunPkgs(t, mmaplife.Analyzer, []atest.Pkg{
		{Dir: "testdata/xpkg/store", Path: "botscope/internal/dataset/fix"},
		{Dir: "testdata/xpkg/use", Path: "botscope/internal/core/fix"},
	})
}
