// Package outside replays the scoped violations in a package nodeterm
// does not cover: none of them may be reported.
package outside

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now()
}

func roll() int {
	return rand.Intn(6)
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
