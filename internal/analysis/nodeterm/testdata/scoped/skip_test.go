package synth

import "time"

// Test files are exempt: deterministic-clock rules apply to measurement
// code, not to test scaffolding.
func testOnlyStamp() time.Time {
	return time.Now()
}
