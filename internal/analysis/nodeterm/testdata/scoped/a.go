// Package synth seeds nodeterm violations inside a scoped package path.
package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `call to time.Now in deterministic package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time.Since in deterministic package`
}

func roll() int {
	return rand.Intn(6) // want `call to global rand.Intn in deterministic package`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `call to global rand.Shuffle`
}

// seeded shows the approved idiom: constructors and methods on an
// injected, seeded generator are fine.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `out is built in map-iteration order and returned without sorting`
		out = append(out, k)
	}
	return out
}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func namedResult(m map[string]int) (out []string) {
	for k := range m { // want `out is built in map-iteration order and returned without sorting`
		out = append(out, k)
	}
	return
}

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output emitted during map iteration has nondeterministic order`
	}
}

// total aggregates commutatively; map order cannot leak.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func allowed() time.Time {
	//botvet:allow nodeterm
	return time.Now()
}
