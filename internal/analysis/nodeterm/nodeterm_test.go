package nodeterm_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/nodeterm"
)

func TestScoped(t *testing.T) {
	atest.Run(t, "testdata/scoped", nodeterm.Analyzer, "botscope/internal/synth")
}

func TestUnscoped(t *testing.T) {
	atest.Run(t, "testdata/unscoped", nodeterm.Analyzer, "example.com/outside")
}
