// Package nodeterm defines a botvet analyzer that keeps the measurement
// packages deterministic. Every table and figure the repo reproduces must
// be byte-identical under a fixed seed, so inside the scoped packages:
//
//   - time.Now / time.Since / time.Until are forbidden — event time comes
//     from the dataset, never from the wall clock;
//   - top-level math/rand functions (rand.Intn, rand.Float64, rand.Perm,
//     ...) are forbidden — all randomness must flow through an injected,
//     seeded *rand.Rand (constructors like rand.New and rand.NewSource
//     stay legal);
//   - building an output slice inside a map range and returning it without
//     an intervening sort is flagged — map iteration order would leak into
//     results;
//   - printing or encoding directly inside a map range is flagged for the
//     same reason.
//
// Intentional exceptions carry a "//botvet:allow nodeterm" comment on the
// offending line or the line above.
package nodeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/vetutil"
)

const defaultScope = "botscope/internal/synth,botscope/internal/botnet,botscope/internal/geo,botscope/internal/core"

var Analyzer = &analysis.Analyzer{
	Name:     "nodeterm",
	Doc:      "forbid wall-clock reads, global randomness, and map-iteration-ordered output in deterministic packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var scopeFlag string

func init() {
	Analyzer.Flags.StringVar(&scopeFlag, "pkgs", defaultScope,
		"comma-separated import paths (with subpackages) the analyzer applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !vetutil.InScope(pass.Pkg.Path(), vetutil.SplitList(scopeFlag)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if vetutil.IsTestFile(pass.Fset, call.Pos()) {
			return
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
				if !vetutil.Suppressed(pass, call.Pos(), "nodeterm") {
					pass.Reportf(call.Pos(),
						"call to time.%s in deterministic package; take event time from the data, not the wall clock", fn.Name())
				}
			}
		case "math/rand", "math/rand/v2":
			if fn.Type().(*types.Signature).Recv() != nil || strings.HasPrefix(fn.Name(), "New") {
				return // methods on a seeded generator, and constructors, are fine
			}
			if !vetutil.Suppressed(pass, call.Pos(), "nodeterm") {
				pass.Reportf(call.Pos(),
					"call to global %s.%s in deterministic package; use an injected seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
			}
		}
	})

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || vetutil.IsTestFile(pass.Fset, decl.Pos()) {
			return
		}
		checkMapOrder(pass, decl)
	})
	return nil, nil
}

// calleeFunc resolves a call's target to a *types.Func, or nil for builtins
// and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkMapOrder flags two map-iteration-order leaks inside one function:
// emitting output from a map range body, and returning a slice that was
// appended to inside a map range without ever handing it to another
// function (which is where a sort would happen).
func checkMapOrder(pass *analysis.Pass, decl *ast.FuncDecl) {
	type appendSite struct {
		obj types.Object
		rng *ast.RangeStmt
	}
	var appends []appendSite

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || rng.X == nil {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.CallExpr:
				if emitsOutput(pass.TypesInfo, x) && !vetutil.Suppressed(pass, x.Pos(), "nodeterm") {
					pass.Reportf(x.Pos(), "output emitted during map iteration has nondeterministic order; collect and sort first")
				}
			case *ast.AssignStmt:
				if obj := appendTarget(pass.TypesInfo, x); obj != nil {
					if _, isMap := obj.Type().Underlying().(*types.Map); !isMap {
						appends = append(appends, appendSite{obj, rng})
					}
				}
			}
			return true
		})
		return true
	})
	if len(appends) == 0 {
		return
	}

	// A slice that is ever passed to another function is assumed sorted (or
	// otherwise order-normalized) there; one that is only appended to and
	// returned keeps the map's iteration order.
	passed := map[types.Object]bool{}
	returned := map[types.Object]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "append", "len", "cap":
						return true // builtins never sort for you
					}
				}
			}
			for _, arg := range x.Args {
				if obj := vetutil.SelectorBase(pass.TypesInfo, arg); obj != nil {
					passed[obj] = true
				}
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
					if obj := vetutil.SelectorBase(pass.TypesInfo, u.X); obj != nil {
						passed[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if obj := vetutil.SelectorBase(pass.TypesInfo, res); obj != nil {
					returned[obj] = true
				}
			}
		}
		return true
	})
	// Named results are returned by bare `return` statements too.
	if decl.Type.Results != nil {
		for _, f := range decl.Type.Results.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	for _, site := range appends {
		if returned[site.obj] && !passed[site.obj] {
			if !vetutil.Suppressed(pass, site.rng.Pos(), "nodeterm") {
				pass.Reportf(site.rng.Pos(),
					"%s is built in map-iteration order and returned without sorting", site.obj.Name())
			}
		}
	}
}

// emitsOutput reports whether a call writes or encodes data directly (fmt
// printing, io writes, encoder calls) — the sinks that would leak map
// order straight into program output.
func emitsOutput(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return true
		}
	}
	return false
}

// appendTarget returns the object of v in `v = append(v, ...)` or
// `x.f = append(x.f, ...)` (the base object x), or nil.
func appendTarget(info *types.Info, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return nil
	}
	return vetutil.SelectorBase(info, as.Lhs[0])
}
