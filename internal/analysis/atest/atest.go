// Package atest runs a go/analysis analyzer over a testdata package and
// checks its diagnostics against // want comments, mirroring the core of
// golang.org/x/tools/go/analysis/analysistest. The real analysistest
// drives go/packages (and with it the go command and network-facing
// module machinery); this harness instead parses and type-checks the
// testdata with the standard library's source importer, which resolves
// stdlib imports straight from GOROOT. Testdata packages may therefore
// import only the standard library — plenty for seeding analyzer
// violations.
//
// Expectations use analysistest syntax on the offending line:
//
//	s.count++ // want `access to count .*without holding`
//
// Each backquoted or double-quoted string after "want" is a regexp that
// must match one diagnostic reported on that line; diagnostics with no
// matching want (and wants with no matching diagnostic) fail the test.
//
// RunPkgs extends the harness to a sequence of fixture packages checked in
// dependency order against a shared fact store, so interprocedural
// analyzers (the SSA tier: goleak, ctxflow, wireframe) can be tested for
// cross-package fact propagation: a producer package exports facts, a
// consumer package imports the producer by path and the harness checks the
// consumer's diagnostics depend on them.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the Go package in dir (rooted at the analyzer's testdata,
// typically "testdata/<case>"), assigns it the import path pkgPath — which
// matters to analyzers that scope themselves by package path — and runs a
// over it, comparing diagnostics with // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()

	fset := token.NewFileSet()
	files := parseDir(t, fset, dir)
	if len(files) == 0 {
		t.Fatalf("atest: no .go files in %s", dir)
	}

	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("atest: type-checking %s: %v", dir, err)
	}

	diags, err := runAnalyzer(a, fset, files, pkg, info, newFactStore())
	if err != nil {
		t.Fatalf("atest: running %s on %s: %v", a.Name, dir, err)
	}

	checkWants(t, fset, files, diags)
}

// Pkg names one fixture package for RunPkgs: the directory holding its
// sources and the import path it is type-checked as. Later packages may
// import earlier ones by that path.
type Pkg struct {
	Dir  string
	Path string
}

// RunPkgs loads each fixture package in order, type-checking later
// packages against the earlier ones (so fixtures can import each other by
// their assigned paths), and runs a over every package against a single
// shared fact store — the in-memory analogue of a real driver's
// per-dependency fact files. Diagnostics from all packages are checked
// against the union of // want comments.
func RunPkgs(t *testing.T, a *analysis.Analyzer, pkgs []Pkg) {
	t.Helper()

	fset := token.NewFileSet()
	facts := newFactStore()
	local := map[string]*types.Package{}
	imp := &multiImporter{
		local:    local,
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	var allFiles []*ast.File
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		files := parseDir(t, fset, p.Dir)
		if len(files) == 0 {
			t.Fatalf("atest: no .go files in %s", p.Dir)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p.Path, fset, files, info)
		if err != nil {
			t.Fatalf("atest: type-checking %s: %v", p.Dir, err)
		}
		local[p.Path] = pkg

		d, err := runAnalyzer(a, fset, files, pkg, info, facts)
		if err != nil {
			t.Fatalf("atest: running %s on %s: %v", a.Name, p.Dir, err)
		}
		diags = append(diags, d...)
		allFiles = append(allFiles, files...)
	}

	checkWants(t, fset, allFiles, diags)
}

// multiImporter resolves the fixture packages already checked this run and
// defers everything else (the standard library) to the source importer.
type multiImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (m *multiImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	return m.fallback.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// runAnalyzer executes a and its Requires chain over one package, sharing
// facts through the given store, and returns the target analyzer's
// diagnostics (prerequisites stay silent).
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *factStore) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]any{}
	var exec func(an *analysis.Analyzer) error
	exec = func(an *analysis.Analyzer) error {
		if _, done := results[an]; done {
			return nil
		}
		for _, req := range an.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   resultsFor(results, an.Requires),
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if an == a { // prerequisite analyzers stay silent
					diags = append(diags, d)
				}
			},
			ExportObjectFact:  facts.exportObjectFact,
			ImportObjectFact:  facts.importObjectFact,
			ExportPackageFact: func(fact analysis.Fact) { facts.exportPackageFact(pkg, fact) },
			ImportPackageFact: facts.importPackageFact,
			AllObjectFacts:    facts.allObjectFacts,
			AllPackageFacts:   facts.allPackageFacts,
		}
		res, err := an.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", an.Name, err)
		}
		results[an] = res
		return nil
	}
	if err := exec(a); err != nil {
		return nil, err
	}
	return diags, nil
}

func parseDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("atest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("atest: parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	return files
}

// factStore is the harness's in-memory stand-in for the fact
// serialization real drivers perform: exporting stores the fact value
// keyed by (object, fact type) and importing copies it back by
// reflection. Under RunPkgs one store spans every fixture package, and
// because later packages type-check against the earlier packages' live
// *types.Package values, a consumer's import of a producer object hits
// the very key the producer exported — cross-package fact propagation
// without gob round-trips.
type factStore struct {
	object  map[types.Object]map[reflect.Type]analysis.Fact
	pkgFact map[*types.Package]map[reflect.Type]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		object:  map[types.Object]map[reflect.Type]analysis.Fact{},
		pkgFact: map[*types.Package]map[reflect.Type]analysis.Fact{},
	}
}

func (fs *factStore) exportObjectFact(obj types.Object, fact analysis.Fact) {
	m := fs.object[obj]
	if m == nil {
		m = map[reflect.Type]analysis.Fact{}
		fs.object[obj] = m
	}
	m[reflect.TypeOf(fact)] = fact
}

func (fs *factStore) importObjectFact(obj types.Object, fact analysis.Fact) bool {
	stored, ok := fs.object[obj][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (fs *factStore) exportPackageFact(pkg *types.Package, fact analysis.Fact) {
	m := fs.pkgFact[pkg]
	if m == nil {
		m = map[reflect.Type]analysis.Fact{}
		fs.pkgFact[pkg] = m
	}
	m[reflect.TypeOf(fact)] = fact
}

func (fs *factStore) importPackageFact(pkg *types.Package, fact analysis.Fact) bool {
	stored, ok := fs.pkgFact[pkg][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (fs *factStore) allObjectFacts() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for obj, m := range fs.object {
		for _, f := range m {
			out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
		}
	}
	return out
}

func (fs *factStore) allPackageFacts() []analysis.PackageFact {
	var out []analysis.PackageFact
	for pkg, m := range fs.pkgFact {
		for _, f := range m {
			out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
		}
	}
	return out
}

func resultsFor(all map[*analysis.Analyzer]any, reqs []*analysis.Analyzer) map[*analysis.Analyzer]any {
	out := make(map[*analysis.Analyzer]any, len(reqs))
	for _, r := range reqs {
		out[r] = all[r]
	}
	return out
}

// wantRe pulls the quoted or backquoted regexps out of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()

	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("atest: bad want regexp %q at %s: %v", raw, key, err)
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("atest: unexpected diagnostic at %s: %s", key, d.Message)
		}
	}

	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("atest: missing diagnostic at %s: want match for %q", k, w.raw)
			}
		}
	}
}
