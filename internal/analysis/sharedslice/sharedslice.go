// Package sharedslice defines a botvet analyzer that protects the data
// plane's Once-cached shared slices. Accessors such as Store.Families,
// Store.Targets, BotIndex.Refs, and DispersionIndex.Series build their
// result exactly once and then hand the same backing array to every
// caller — concurrent readers included — so any mutation through a
// returned slice corrupts every other reader, silently and racily.
//
// Producers opt in with the comment directive
//
//	//botscope:shared
//
// in their doc comment. The directive is exported as an object fact, so
// consumers in *other* packages are checked too (the unitchecker driver
// serializes facts along the import graph). At every use site the
// analyzer tracks variables bound to a shared producer's result —
// including re-slices of them — and reports:
//
//   - element writes: v[i] = x, v[i]++;
//   - append with a shared slice as destination (append may write into
//     the shared backing array whenever spare capacity exists);
//   - handing a shared slice to an in-place mutator: sort.Slice,
//     sort.Sort, sort.Ints/Strings/Float64s, slices.Sort*, slices.Reverse;
//   - copy with a shared slice as destination.
//
// Rebinding the variable to anything else — most commonly the clone
// idiom append([]T(nil), v...) — ends the tracking, so clone-then-sort
// stays silent. Intentional exceptions carry "//botvet:allow sharedslice"
// or "//botvet:ignore sharedslice <reason>".
package sharedslice

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/vetutil"
)

// Directive is the doc-comment marker a shared-slice producer carries.
const Directive = "botscope:shared"

// IsShared is the object fact exported for every function or method whose
// doc comment carries the //botscope:shared directive.
type IsShared struct{}

func (*IsShared) AFact()         {}
func (*IsShared) String() string { return "shared" }

var Analyzer = &analysis.Analyzer{
	Name:      "sharedslice",
	Doc:       "flag mutation of slices returned by //botscope:shared Once-cached accessors",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*IsShared)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Phase 1: export a fact for every annotated producer in this package,
	// so both this pass and downstream packages can resolve them.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if !vetutil.HasDirective(decl.Doc, Directive) {
			return
		}
		if fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
			pass.ExportObjectFact(fn, &IsShared{})
		}
	})

	// Phase 2: walk every function body looking for mutations.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil {
			return
		}
		checkBody(pass, decl.Body)
	})
	return nil, nil
}

// checkBody tracks shared-slice bindings through one function body (in
// source order, which ast.Inspect's preorder traversal approximates well
// enough for straight-line binding/kill analysis) and reports mutations.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	shared := map[types.Object]bool{}

	// isSharedExpr reports whether e evaluates to a shared slice: a direct
	// call of an annotated producer, a variable currently bound to one, or
	// a re-slice of either.
	var isSharedExpr func(e ast.Expr) bool
	isSharedExpr = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return isSharedCall(pass, x)
		case *ast.Ident:
			return shared[pass.TypesInfo.ObjectOf(x)]
		case *ast.SliceExpr:
			return isSharedExpr(x.X)
		}
		return false
	}

	report := func(pos ast.Node, format string, args ...any) {
		if !vetutil.Suppressed(pass, pos.Pos(), "sharedslice") {
			pass.Reportf(pos.Pos(), format, args...)
		}
	}

	// checked marks calls already examined eagerly at their enclosing
	// assignment — before the assignment killed the binding they mutate —
	// so the traversal's own visit does not re-report them.
	checked := map[*ast.CallExpr]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// Mutation checks first, while the pre-assignment bindings are
			// still live: element writes on the LHS, and calls anywhere on
			// the RHS (v = append(v, ...) must see v as still shared).
			for _, lhs := range x.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isSharedExpr(idx.X) {
					report(lhs, "write into shared slice %s returned by a //botscope:shared accessor; clone it first", exprName(idx.X))
				}
			}
			for _, rhs := range x.Rhs {
				ast.Inspect(rhs, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && !checked[call] {
						checked[call] = true
						checkCall(pass, call, isSharedExpr, report)
					}
					return true
				})
			}
			// Then update bindings: v := sharedCall() begins tracking,
			// rebinding v to anything else ends it.
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := pass.TypesInfo.ObjectOf(id)
					if obj == nil {
						continue
					}
					if isSharedExpr(x.Rhs[i]) {
						shared[obj] = true
					} else {
						delete(shared, obj)
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok && isSharedExpr(idx.X) {
				report(x, "write into shared slice %s returned by a //botscope:shared accessor; clone it first", exprName(idx.X))
			}
		case *ast.CallExpr:
			if !checked[x] {
				checked[x] = true
				checkCall(pass, x, isSharedExpr, report)
			}
		}
		return true
	})
}

// checkCall flags calls that mutate a shared slice argument in place.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, isSharedExpr func(ast.Expr) bool, report func(ast.Node, string, ...any)) {
	if len(call.Args) == 0 {
		return
	}
	// Builtins: append(shared, ...) and copy(shared, ...) write the shared
	// backing array (append does whenever spare capacity exists).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "append":
				if isSharedExpr(call.Args[0]) {
					report(call, "append to shared slice %s may write the Once-cached backing array; clone with append([]T(nil), s...) first", exprName(call.Args[0]))
				}
			case "copy":
				if isSharedExpr(call.Args[0]) {
					report(call, "copy into shared slice %s mutates the Once-cached backing array", exprName(call.Args[0]))
				}
			case "clear":
				if isSharedExpr(call.Args[0]) {
					report(call, "clear of shared slice %s mutates the Once-cached backing array", exprName(call.Args[0]))
				}
			}
			return
		}
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if !mutatesFirstArg(fn) {
		return
	}
	if isSharedExpr(call.Args[0]) {
		report(call, "%s.%s reorders shared slice %s in place; clone it before sorting", fn.Pkg().Name(), fn.Name(), exprName(call.Args[0]))
	}
}

// mutatesFirstArg recognizes the standard-library in-place mutators whose
// first argument is rearranged: the sort package's slice entry points and
// the slices package's sorting/reversing helpers.
func mutatesFirstArg(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s", "Reverse":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc", "Reverse", "Delete", "Insert", "Compact", "CompactFunc":
			return true
		}
	}
	return false
}

// isSharedCall reports whether the call's callee carries the IsShared
// fact (exported locally in phase 1, or imported from another package).
func isSharedCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	return pass.ImportObjectFact(fn, &IsShared{})
}

// calleeFunc resolves a call's target to a *types.Func, or nil for
// builtins and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// exprName renders a compact name for diagnostics: the identifier, the
// method name of a call, or "slice" as a fallback.
func exprName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.CallExpr:
		switch f := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			return f.Name + "()"
		case *ast.SelectorExpr:
			return f.Sel.Name + "()"
		}
	case *ast.SliceExpr:
		return exprName(x.X)
	}
	return "slice"
}
