package a

import (
	"sort"
)

// Index mimics dataset.Store: Once-cached accessors returning shared
// slices, annotated with the //botscope:shared directive.
type Index struct {
	families []string
	counts   []int
}

// Families returns the sorted family list. The slice is computed once and
// shared: callers must not modify it.
//
//botscope:shared
func (ix *Index) Families() []string { return ix.families }

// Counts returns the per-family counts, aligned with Families.
//
//botscope:shared
func (ix *Index) Counts() []int { return ix.counts }

// Shared is a package-level producer of a shared slice.
//
//botscope:shared
func Shared() []int { return sharedData }

var sharedData = []int{3, 1, 2}

// Fresh returns a private copy; it is not annotated.
func Fresh() []int { return append([]int(nil), sharedData...) }

func badIndexWrite(ix *Index) {
	fams := ix.Families()
	fams[0] = "zeus" // want `write into shared slice fams`
}

func badIncDec() {
	v := Shared()
	v[0]++ // want `write into shared slice v`
}

func badAppend(ix *Index) []int {
	c := ix.Counts()
	c = append(c, 7) // want `append to shared slice c`
	return c
}

func badSortDirect(ix *Index) {
	sort.Slice(ix.Families(), func(i, j int) bool { return false }) // want `sort.Slice reorders shared slice Families\(\)`
}

func badSortVar() {
	v := Shared()
	sort.Ints(v) // want `sort.Ints reorders shared slice v`
}

func badCopyInto() {
	v := Shared()
	copy(v, []int{9, 9}) // want `copy into shared slice v`
}

func badSubsliceWrite() {
	head := Shared()[:2]
	head[1] = 5 // want `write into shared slice head`
}

func goodCloneThenSort() {
	v := append([]int(nil), Shared()...)
	sort.Ints(v)
	v[0] = 9
}

func goodRebind() {
	v := Shared()
	v = Fresh()
	v[0] = 1 // rebound to a private copy; no longer shared
}

func goodReadOnly(ix *Index) int {
	total := 0
	for _, c := range ix.Counts() {
		total += c
	}
	if len(ix.Families()) > 0 {
		total += len(ix.Families()[0])
	}
	return total
}

func goodFreshProducer() {
	v := Fresh()
	sort.Ints(v)
	v[0] = 2
}

func goodAppendSource() []int {
	// Shared slice as append *source* copies out of it; fine.
	return append([]int(nil), Shared()...)
}

func allowedException() {
	v := Shared()
	v[0] = 1 //botvet:ignore sharedslice fixture exercises the ignore directive
}
