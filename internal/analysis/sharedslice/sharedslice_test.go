package sharedslice_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/sharedslice"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", sharedslice.Analyzer, "example.com/a")
}
