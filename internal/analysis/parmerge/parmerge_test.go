package parmerge_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/parmerge"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", parmerge.Analyzer, "example.com/a")
}

// TestCluster covers the frontend's fan-out shapes: index-addressed
// per-shard results stay silent; shared accumulators, map-ordered
// payloads, and pool-escaping goroutines are reported.
func TestCluster(t *testing.T) {
	atest.Run(t, "testdata/cluster", parmerge.Analyzer, "example.com/a")
}
