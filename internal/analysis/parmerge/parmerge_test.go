package parmerge_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/parmerge"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", parmerge.Analyzer, "example.com/a")
}
