// Package parmerge defines a botvet analyzer that enforces the contracts
// of the deterministic parallel kernels in internal/par. par.Map and
// par.ChunkMap promise byte-identical output for any worker count, but
// only if the closures handed to them behave: each invocation may touch
// its own index-addressed slot and nothing else. The pool entry points
// opt in with the comment directive
//
//	//botscope:parpool
//
// in their doc comment, exported as an object fact so call sites in other
// packages are checked too. Inside every function literal passed to an
// annotated pool function, the analyzer reports:
//
//   - writes to captured variables (assignments, ++/--, captured-pointer
//     stores) whose destination is not an element indexed by one of the
//     closure's own parameters — concurrent invocations would race, and
//     even under a mutex the merge order would depend on scheduling;
//   - go statements — goroutines launched inside a pool closure escape
//     the pool's bounded concurrency and its deterministic merge;
//   - slices built in map-iteration order and returned from the closure
//     without passing through another call (where a sort would happen) —
//     the shard's content would depend on map hashing.
//
// Intentional exceptions carry "//botvet:allow parmerge" or
// "//botvet:ignore parmerge <reason>".
package parmerge

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/vetutil"
)

// Directive is the doc-comment marker a pool entry point carries.
const Directive = "botscope:parpool"

// IsPool is the object fact exported for every function whose doc comment
// carries the //botscope:parpool directive.
type IsPool struct{}

func (*IsPool) AFact()         {}
func (*IsPool) String() string { return "parpool" }

var Analyzer = &analysis.Analyzer{
	Name:      "parmerge",
	Doc:       "enforce the determinism contract of closures passed to //botscope:parpool kernels",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*IsPool)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if !vetutil.HasDirective(decl.Doc, Directive) {
			return
		}
		if fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
			pass.ExportObjectFact(fn, &IsPool{})
		}
	})

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || !pass.ImportObjectFact(fn, &IsPool{}) {
			return
		}
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				checkClosure(pass, fn.Name(), lit)
			}
		}
	})
	return nil, nil
}

// checkClosure enforces the pool contract inside one closure literal.
func checkClosure(pass *analysis.Pass, poolName string, lit *ast.FuncLit) {
	report := func(pos ast.Node, format string, args ...any) {
		if !vetutil.Suppressed(pass, pos.Pos(), "parmerge") {
			pass.Reportf(pos.Pos(), format, args...)
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if x != lit {
				return false // nested closures are that closure's business
			}
		case *ast.GoStmt:
			report(x, "go statement inside a closure passed to %s bypasses the bounded pool; let the kernel schedule the work", poolName)
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkWrite(pass, poolName, lit, lhs, x.Tok.String(), report)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, poolName, lit, x.X, x.Tok.String(), report)
		}
		return true
	})

	checkMapOrderedReturn(pass, poolName, lit, report)
}

// checkWrite flags stores whose destination is captured from outside the
// closure and not addressed by one of the closure's own parameters.
func checkWrite(pass *analysis.Pass, poolName string, lit *ast.FuncLit, lhs ast.Expr, tok string, report func(ast.Node, string, ...any)) {
	root, indexed := writeRoot(pass.TypesInfo, lit, lhs)
	if root == nil || indexed {
		return
	}
	if vetutil.DeclaredWithin(root, lit.Pos(), lit.End()) {
		return // the closure's own local or parameter
	}
	report(lhs, "closure passed to %s writes captured %s (%s) outside an index-addressed slot; shard results through the return value instead", poolName, root.Name(), tok)
}

// writeRoot peels a store destination down to its root object and reports
// whether the destination is an element addressed by a closure parameter
// (out[i] = ... with i a parameter — the one sanctioned captured write).
func writeRoot(info *types.Info, lit *ast.FuncLit, e ast.Expr) (root types.Object, paramIndexed bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x), false
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			if usesClosureParam(info, lit, x.Index) {
				return nil, true
			}
			e = x.X
		default:
			return nil, false
		}
	}
}

// usesClosureParam reports whether the expression mentions any of the
// closure's own parameters.
func usesClosureParam(info *types.Info, lit *ast.FuncLit, e ast.Expr) bool {
	params := map[types.Object]bool{}
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && params[info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// checkMapOrderedReturn flags slices appended to inside a map range and
// returned from the closure without ever being handed to another call —
// the shard's element order would follow map hashing, and the kernel's
// ordered merge would faithfully preserve the nondeterminism.
func checkMapOrderedReturn(pass *analysis.Pass, poolName string, lit *ast.FuncLit, report func(ast.Node, string, ...any)) {
	type appendSite struct {
		obj types.Object
		rng *ast.RangeStmt
	}
	var appends []appendSite

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || rng.X == nil {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if obj := appendTarget(pass.TypesInfo, as); obj != nil {
				if _, isMap := obj.Type().Underlying().(*types.Map); !isMap {
					appends = append(appends, appendSite{obj, rng})
				}
			}
			return true
		})
		return true
	})
	if len(appends) == 0 {
		return
	}

	passed := map[types.Object]bool{}
	returned := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "append", "len", "cap":
						return true // builtins never sort for you
					}
				}
			}
			for _, arg := range x.Args {
				if obj := vetutil.SelectorBase(pass.TypesInfo, arg); obj != nil {
					passed[obj] = true
				}
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
					if obj := vetutil.SelectorBase(pass.TypesInfo, u.X); obj != nil {
						passed[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if obj := vetutil.SelectorBase(pass.TypesInfo, res); obj != nil {
					returned[obj] = true
				}
			}
		}
		return true
	})
	if lit.Type.Results != nil {
		for _, f := range lit.Type.Results.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	for _, site := range appends {
		if returned[site.obj] && !passed[site.obj] {
			report(site.rng, "closure passed to %s returns %s built in map-iteration order; the merged shards differ run to run — collect and sort first", poolName, site.obj.Name())
		}
	}
}

// appendTarget returns the object of v in `v = append(v, ...)` (or the
// base object of x.f in `x.f = append(x.f, ...)`), or nil.
func appendTarget(info *types.Info, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return nil
	}
	return vetutil.SelectorBase(info, as.Lhs[0])
}

// calleeFunc resolves a call's target to a *types.Func, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}
