// Package a seeds parmerge with the frontend's fan-out shapes: a
// bounded-pool kernel whose per-shard closures must write only through
// their own index, with the degraded-shard bookkeeping folded afterwards
// on the caller's goroutine.
package a

import "sort"

type snap struct {
	ingested uint64
	counts   map[string]uint64
}

// fanOut mimics par.Map as the frontend uses it: one closure per shard.
//
//botscope:parpool
func fanOut(n int, f func(i int) *snap) []*snap {
	out := make([]*snap, n)
	for i := 0; i < n; i++ {
		out[i] = f(i)
	}
	return out
}

// goodIndexedFanOut is the frontend's actual shape: each shard's result
// lands at its own index; degraded detection happens after the barrier.
func goodIndexedFanOut(shards []int, fetch func(id int) *snap) ([]*snap, []int) {
	snaps := fanOut(len(shards), func(i int) *snap {
		return fetch(shards[i]) // index-addressed: legal
	})
	var degraded []int
	for i, s := range snaps {
		if s == nil {
			degraded = append(degraded, shards[i])
		}
	}
	return snaps, degraded
}

// badSharedDegraded accumulates the degraded list inside the closures —
// the data race the post-barrier fold avoids.
func badSharedDegraded(shards []int, fetch func(id int) *snap) []int {
	var degraded []int
	fanOut(len(shards), func(i int) *snap {
		s := fetch(shards[i])
		if s == nil {
			degraded = append(degraded, shards[i]) // want `writes captured degraded`
		}
		return s
	})
	return degraded
}

// badSharedTotal merges the per-shard totals inside the fan-out instead
// of summing the returned snapshots.
func badSharedTotal(shards []int, fetch func(id int) *snap) uint64 {
	var total uint64
	fanOut(len(shards), func(i int) *snap {
		s := fetch(shards[i])
		if s != nil {
			total += s.ingested // want `writes captured total`
		}
		return s
	})
	return total
}

// chunkPayloads mimics par.ChunkMap building per-shard wire payloads.
//
//botscope:parpool
func chunkPayloads(n int, f func(lo, hi int) []string) [][]string {
	return [][]string{f(0, n)}
}

// badUnorderedKeys returns a shard payload built in map-iteration order —
// the merged response would vary run to run.
func badUnorderedKeys(counts map[string]uint64) [][]string {
	return chunkPayloads(1, func(lo, hi int) []string {
		var keys []string
		for k := range counts { // want `built in map-iteration order`
			keys = append(keys, k)
		}
		return keys
	})
}

// goodSortedKeys normalizes the iteration order before it can leak into
// the merged payload.
func goodSortedKeys(counts map[string]uint64) [][]string {
	return chunkPayloads(1, func(lo, hi int) []string {
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys) // order normalized before use
		return keys
	})
}

// badSideGoroutine escapes the bounded pool from inside a kernel.
func badSideGoroutine(shards []int, fetch func(id int) *snap) []*snap {
	return fanOut(len(shards), func(i int) *snap {
		go func() {}() // want `bypasses the bounded pool`
		return fetch(shards[i])
	})
}
