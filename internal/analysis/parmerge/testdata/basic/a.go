package a

import "sort"

// Map mimics par.Map: a deterministic bounded-parallelism kernel whose
// closures must be pure per index.
//
//botscope:parpool
func Map(workers, n int, f func(i int) int) []int {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = f(i)
	}
	return out
}

// ChunkMap mimics par.ChunkMap.
//
//botscope:parpool
func ChunkMap(workers, n int, f func(lo, hi int) []string) [][]string {
	return [][]string{f(0, n)}
}

// plain is an ordinary higher-order function without the directive.
func plain(n int, f func(i int) int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func badCapturedCounter(xs []int) int {
	total := 0
	Map(0, len(xs), func(i int) int {
		total += xs[i] // want `writes captured total`
		return 0
	})
	return total
}

func badCapturedSliceWrite(xs []int) {
	seen := make([]int, len(xs))
	Map(0, len(xs), func(i int) int {
		seen[0] = 1 // want `writes captured seen`
		return xs[i]
	})
}

type acc struct{ n int }

func badCapturedFieldWrite(xs []int, a *acc) {
	Map(0, len(xs), func(i int) int {
		a.n++ // want `writes captured a`
		return xs[i]
	})
}

func badGoStmt(xs []int) []int {
	return Map(0, len(xs), func(i int) int {
		go func() {}() // want `bypasses the bounded pool`
		return xs[i]
	})
}

func badMapOrderedShard(m map[string]int) [][]string {
	return ChunkMap(0, 1, func(lo, hi int) []string {
		var keys []string
		for k := range m { // want `built in map-iteration order`
			keys = append(keys, k)
		}
		return keys
	})
}

func goodIndexAddressedWrite(xs []int) []int {
	out := make([]int, len(xs))
	Map(0, len(xs), func(i int) int {
		out[i] = xs[i] * 2 // index-addressed by the closure's own parameter
		return out[i]
	})
	return out
}

func goodLocalState(m map[string]int) [][]string {
	return ChunkMap(0, 1, func(lo, hi int) []string {
		var keys []string
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys) // passed to a call: order normalized
		return keys
	})
}

func goodLocalAccumulator(xs []int) []int {
	return Map(0, len(xs), func(i int) int {
		sum := 0
		for j := 0; j <= i; j++ {
			sum += xs[j]
		}
		return sum
	})
}

func goodPlainFunctionIsUnchecked(xs []int) int {
	total := 0
	plain(len(xs), func(i int) int {
		total += xs[i] // no directive on plain; not a pool kernel
		return 0
	})
	return total
}

func allowedException(xs []int) int {
	hits := 0
	Map(0, len(xs), func(i int) int {
		hits++ //botvet:ignore parmerge fixture exercises the ignore directive
		return xs[i]
	})
	return hits
}
