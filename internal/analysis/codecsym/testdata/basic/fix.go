// The basic codecsym fixture: a miniature writer/reader in the repo's
// wire style plus every pair shape the analyzer classifies.
package fix

type writer struct{ buf []byte }

func (w *writer) uvarint(v uint64) {}
func (w *writer) varint(v int64)   {}
func (w *writer) f64(v float64)    {}
func (w *writer) str(s string)     {}

type reader struct{ buf []byte }

func (r *reader) uvarint() uint64    { return 0 }
func (r *reader) varint() int64      { return 0 }
func (r *reader) f64() float64       { return 0 }
func (r *reader) str() string        { return "" }
func (r *reader) count(minB int) int { return 0 }

type rec struct {
	ID   uint64
	N    int64
	Lat  float64
	Lon  float64
	Name string
	Tags []string
}

// encGood writes a rec: scalars, then a length-prefixed tag list.
//
//botvet:codec encode good
func encGood(w *writer, x *rec) {
	w.uvarint(x.ID)
	w.varint(x.N)
	w.f64(x.Lat)
	w.f64(x.Lon)
	w.str(x.Name)
	w.uvarint(uint64(len(x.Tags)))
	for _, t := range x.Tags {
		w.str(t)
	}
}

// decGood mirrors encGood; count() normalizes to the uvarint it consumes.
//
//botvet:codec decode good
func decGood(r *reader, x *rec) {
	x.ID = r.uvarint()
	x.N = r.varint()
	x.Lat = r.f64()
	x.Lon = r.f64()
	x.Name = r.str()
	n := r.count(1)
	for i := 0; i < n; i++ {
		x.Tags = append(x.Tags, r.str())
	}
}

// encDrift gained the Name field; decDrift never learned about it. The
// frame still parses — fuzzing a round trip only fails if the stray
// bytes happen to break a later field — but the schema has drifted.
//
//botvet:codec encode drift
func encDrift(w *writer, x *rec) {
	w.uvarint(x.ID)
	w.varint(x.N)
	w.str(x.Name) // want `codec pair "drift" is asymmetric: encode emits 3 ops but decode consumes 2`
}

// decDrift is one field behind.
//
//botvet:codec decode drift
func decDrift(r *reader, x *rec) {
	x.ID = r.uvarint()
	x.N = r.varint()
}

// encKind and decKind disagree on a primitive.
//
//botvet:codec encode kind
func encKind(w *writer, x *rec) {
	w.uvarint(x.ID)
	w.f64(x.Lat)
}

// decKind reads a varint where a f64 was written.
//
//botvet:codec decode kind
func decKind(r *reader, x *rec) {
	x.ID = r.uvarint()
	x.N = r.varint() // want `codec pair "kind" diverges at op 2: encode writes f64 \(Lat\) but decode reads varint \(N\)`
}

// encSwap and decSwap move the same bytes into the wrong fields: the
// count and kinds match, only the field labels catch it.
//
//botvet:codec encode swap
func encSwap(w *writer, x *rec) {
	w.f64(x.Lat)
	w.f64(x.Lon)
}

// decSwap stores Lat's bytes into Lon.
//
//botvet:codec decode swap
func decSwap(r *reader, x *rec) {
	x.Lon = r.f64() // want `codec pair "swap" field drift at op 1: encode writes f64 \(Lat\) but decode stores it into f64 \(Lon\)`
	x.Lat = r.f64()
}

// encAlone has no reader half at all.
//
//botvet:codec encode alone
func encAlone(w *writer, x *rec) { // want `codec pair "alone" declares only its encode half`
	w.uvarint(x.ID)
}

// encInner / decInner form a nested pair the outer pairs may call.
//
//botvet:codec encode inner
func encInner(w *writer, x *rec) { w.varint(x.N) }

// decInner mirrors encInner.
//
//botvet:codec decode inner
func decInner(r *reader, x *rec) { x.N = r.varint() }

// encOuter composes the inner pair on the matching side.
//
//botvet:codec encode outer
func encOuter(w *writer, x *rec) {
	w.uvarint(x.ID)
	encInner(w, x)
}

// decOuter mirrors encOuter.
//
//botvet:codec decode outer
func decOuter(r *reader, x *rec) {
	x.ID = r.uvarint()
	decInner(r, x)
}

// encBad calls the decode half of the inner pair from an encode half.
//
//botvet:codec encode bad
func encBad(w *writer, r *reader, x *rec) {
	w.uvarint(x.ID)
	decInner(r, x) // want `encode half calls the decode half of pair "inner"`
}

// decBad mirrors encBad so the sequence itself stays symmetric.
//
//botvet:codec decode bad
func decBad(r *reader, x *rec) {
	x.ID = r.uvarint()
	decInner(r, x)
}

// encDup and encDup2 both claim the encode side of one pair.
//
//botvet:codec encode dup
func encDup(w *writer, x *rec) { w.uvarint(x.ID) }

// encDup2 duplicates the encode half.
//
//botvet:codec encode dup
func encDup2(w *writer, x *rec) { w.uvarint(x.ID) } // want `codec pair "dup" has two encode halves`

// decDup is the single decode half.
//
//botvet:codec decode dup
func decDup(r *reader, x *rec) { x.ID = r.uvarint() }

// encDead ends with an unreachable op: the ssabuild liveness filter
// drops it, so the pair stays symmetric.
//
//botvet:codec encode dead
func encDead(w *writer, x *rec) {
	w.uvarint(x.ID)
	return
	w.varint(x.N)
}

// decDead mirrors only the live op.
//
//botvet:codec decode dead
func decDead(r *reader, x *rec) {
	x.ID = r.uvarint()
}
