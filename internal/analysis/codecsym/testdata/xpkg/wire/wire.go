// Producer half of the cross-package codecsym fixture: the point pair
// lives here and its facts travel to importers.
package wire

type W struct{ buf []byte }

func (w *W) Uvarint(v uint64) {}
func (w *W) Varint(v int64)   {}

type R struct{ buf []byte }

func (r *R) Uvarint() uint64 { return 0 }
func (r *R) Varint() int64   { return 0 }

type Point struct{ X, Y int64 }

// EncPoint writes a point.
//
//botvet:codec encode point
func EncPoint(w *W, p *Point) {
	w.Varint(p.X)
	w.Varint(p.Y)
}

// DecPoint mirrors EncPoint.
//
//botvet:codec decode point
func DecPoint(r *R, p *Point) {
	p.X = r.Varint()
	p.Y = r.Varint()
}
