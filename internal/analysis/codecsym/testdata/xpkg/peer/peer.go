// Consumer half of the cross-package codecsym fixture: frame pairs that
// nest the imported point pair, on the right and the wrong side.
package peer

import wire "botscope/internal/cluster/wirefix"

type frame struct {
	N uint64
	P wire.Point
}

// encFrame nests the imported pair on the matching side.
//
//botvet:codec encode frame
func encFrame(w *wire.W, f *frame) {
	w.Uvarint(f.N)
	wire.EncPoint(w, &f.P)
}

// decFrame mirrors encFrame.
//
//botvet:codec decode frame
func decFrame(r *wire.R, f *frame) {
	f.N = r.Uvarint()
	wire.DecPoint(r, &f.P)
}

// encBad calls the imported decode half from an encode half.
//
//botvet:codec encode bad
func encBad(w *wire.W, r *wire.R, f *frame) {
	w.Uvarint(f.N)
	wire.DecPoint(r, &f.P) // want `encode half calls the decode half of pair "point"`
}

// decBad mirrors encBad so the sequence itself stays symmetric.
//
//botvet:codec decode bad
func decBad(r *wire.R, f *frame) {
	f.N = r.Uvarint()
	wire.DecPoint(r, &f.P)
}
