package codecsym_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/codecsym"
)

// TestBasic covers the in-package pair shapes: a symmetric pair with
// loops, length-prefixed sequences, and count normalization stays
// silent; the seeded drift pair (a field added to the encoder only — the
// exact shape round-trip fuzzing misses while framing still parses) is
// reported, as are kind mismatches, swapped same-kind fields, missing
// and duplicated halves, wrong-side nested calls, and dead ops are
// excluded by the ssabuild liveness filter.
func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", codecsym.Analyzer, "botscope/internal/cluster/fix")
}

// TestCrossPackage proves the codec facts travel: nested pair calls into
// an imported package resolve to the right side, and calling the foreign
// decode half from an encode half is reported.
func TestCrossPackage(t *testing.T) {
	atest.RunPkgs(t, codecsym.Analyzer, []atest.Pkg{
		{Dir: "testdata/xpkg/wire", Path: "botscope/internal/cluster/wirefix"},
		{Dir: "testdata/xpkg/peer", Path: "botscope/internal/cluster/peerfix"},
	})
}
