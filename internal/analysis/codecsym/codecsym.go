// Package codecsym defines the columnar-tier botvet analyzer that keeps
// the hand-rolled binary codecs symmetric. The BSCS snapshot sections and
// the BSCW cluster wire payloads are encoded and decoded by paired
// functions that must agree on field order and count forever — a field
// added to the encoder but not the decoder shifts every later byte and
// produces silently wrong data, a failure mode round-trip fuzzing only
// finds when the drift happens to break framing.
//
// Pairs are declared with a doc directive on both halves:
//
//	//botvet:codec encode attacks     (the writer half)
//	//botvet:codec decode attacks     (the reader half)
//
// For each half the analyzer extracts the sequence of codec-primitive
// operations reachable from entry (via the ssabuild summaries, so dead
// code is excluded): writer/reader method calls named uvarint, varint,
// f64, str, bool, addr — with the reader-side refinements count and
// strID normalized to the uvarint they consume — plus calls into other
// directive-marked pairs, which must be invoked on the matching side.
// The two sequences must be identical op for op; where both sides name
// the struct field they touch, the field names must agree too, so a
// swapped Lat/Lon pair is caught even though the byte count matches.
//
// The analyzer reports, once per pair, the first divergence (kind, count,
// or field), plus missing/duplicate halves and wrong-side pair calls.
// Audited exceptions carry "//botvet:ignore codecsym <reason>".
package codecsym

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"botscope/internal/analysis/ssabuild"
	"botscope/internal/analysis/vetutil"
)

// directive is the doc-comment prefix declaring a codec half:
// "//botvet:codec <encode|decode> <pair>".
const directive = "botvet:codec"

var Analyzer = &analysis.Analyzer{
	Name:      "codecsym",
	Doc:       "paired //botvet:codec encode/decode functions must touch the same fields in the same order with the same primitive kinds",
	Requires:  []*analysis.Analyzer{ssabuild.Analyzer},
	FactTypes: []analysis.Fact{(*codecFact)(nil)},
	Run:       run,
}

// codecFact publishes a function's codec role so cross-package pair calls
// resolve to the right side.
type codecFact struct {
	Side string // "encode" or "decode"
	Pair string
}

func (*codecFact) AFact()           {}
func (f *codecFact) String() string { return fmt.Sprintf("codec %s half of %q", f.Side, f.Pair) }

// kinds maps writer/reader primitive method names to the wire kind they
// move. count (length guard) and strID (bounds-checked table index) are
// reader-side refinements of uvarint.
var kinds = map[string]string{
	"uvarint": "uvarint", "Uvarint": "uvarint",
	"varint": "varint", "Varint": "varint",
	"f64": "f64", "F64": "f64",
	"str": "str", "Str": "str",
	"bool": "bool", "Bool": "bool",
	"addr": "addr", "Addr": "addr",
	"count": "uvarint", "Count": "uvarint",
	"strID": "uvarint", "StrID": "uvarint",
}

// op is one primitive operation in a codec half's linearized sequence.
type op struct {
	kind  string // wire kind, or "pair:<name>" for a nested pair call
	label string // struct field touched, when statically resolvable
	pos   token.Pos
}

func (o op) describe() string {
	if o.label != "" {
		return fmt.Sprintf("%s (%s)", o.kind, o.label)
	}
	return o.kind
}

// half is one annotated function.
type half struct {
	obj  *types.Func
	side string
	pair string
	decl *ast.FuncDecl
	ops  []op
}

func run(pass *analysis.Pass) (any, error) {
	ssa := pass.ResultOf[ssabuild.Analyzer].(*ssabuild.SSA)

	// Collect the annotated halves and export their facts before any op
	// extraction, so nested pair calls resolve in one sweep.
	var halves []*half
	local := map[*types.Func]*codecFact{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			side, pair, ok := parseDirective(fd.Doc)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil || fd.Body == nil {
				continue
			}
			h := &half{obj: obj, side: side, pair: pair, decl: fd}
			halves = append(halves, h)
			fact := &codecFact{Side: side, Pair: pair}
			local[obj] = fact
			pass.ExportObjectFact(obj, fact)
		}
	}
	if len(halves) == 0 {
		return nil, nil
	}

	c := &checker{pass: pass, ssa: ssa, local: local}
	for _, h := range halves {
		c.extract(h)
	}

	// Group into pairs and compare.
	byPair := map[string][]*half{}
	for _, h := range halves {
		byPair[h.pair] = append(byPair[h.pair], h)
	}
	names := make([]string, 0, len(byPair))
	for name := range byPair {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c.checkPair(name, byPair[name])
	}
	return nil, nil
}

// parseDirective matches "//botvet:codec <encode|decode> <pair>" in a doc
// comment group.
func parseDirective(doc *ast.CommentGroup) (side, pair string, ok bool) {
	if doc == nil {
		return "", "", false
	}
	for _, cm := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
		rest, found := strings.CutPrefix(text, directive+" ")
		if !found {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 2 && (fields[0] == "encode" || fields[0] == "decode") {
			return fields[0], fields[1], true
		}
	}
	return "", "", false
}

type checker struct {
	pass  *analysis.Pass
	ssa   *ssabuild.SSA
	local map[*types.Func]*codecFact
}

func (c *checker) skip(pos token.Pos) bool {
	return vetutil.IsTestFile(c.pass.Fset, pos) || vetutil.Suppressed(c.pass, pos, "codecsym")
}

// roleOf resolves a callee's codec role, local or through facts.
func (c *checker) roleOf(fn *types.Func) *codecFact {
	if fn == nil {
		return nil
	}
	if f := c.local[fn]; f != nil {
		return f
	}
	var fact codecFact
	if c.pass.ImportObjectFact(fn, &fact) {
		return &fact
	}
	return nil
}

// extract linearizes h's reachable primitive operations in source order.
// Reachability comes from the ssabuild summary (dead ops never appear in
// Func.Calls); order and field labels come from a context-carrying walk
// of the body.
func (c *checker) extract(h *half) {
	live := map[*ast.CallExpr]bool{}
	if f := c.ssa.FuncFor(h.decl); f != nil {
		for _, call := range f.Calls {
			live[call.Node] = true
		}
	}

	// rangeLabels resolves range variables drawn from a field-rooted
	// expression ("for _, v := range c.aID") back to the field name.
	rangeLabels := map[types.Object]string{}
	ast.Inspect(h.decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if id, ok := rs.Value.(*ast.Ident); ok && id.Name != "_" {
			if lbl := c.fieldLabel(rs.X, nil); lbl != "" {
				if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
					rangeLabels[obj] = lbl
				}
			}
		}
		return true
	})

	var walkExpr func(e ast.Expr, target string)
	var walkStmt func(s ast.Stmt)

	record := func(call *ast.CallExpr, target string) bool {
		fn := calleeOf(c.pass.TypesInfo, call)
		if fn == nil {
			return false
		}
		if role := c.roleOf(fn); role != nil {
			if role.Side != h.side && !c.skip(call.Pos()) {
				c.pass.Reportf(call.Pos(),
					"codec pair %q: %s half calls the %s half of pair %q; nested pairs must be invoked on the matching side",
					h.pair, h.side, role.Side, role.Pair)
			}
			h.ops = append(h.ops, op{kind: "pair:" + role.Pair, pos: call.Pos()})
			return true
		}
		kind, ok := kinds[fn.Name()]
		if !ok || fn.Type().(*types.Signature).Recv() == nil {
			return false
		}
		label := target
		if len(call.Args) > 0 {
			label = c.fieldLabel(call.Args[0], rangeLabels)
		}
		h.ops = append(h.ops, op{kind: kind, label: label, pos: call.Pos()})
		return true
	}

	walkExpr = func(e ast.Expr, target string) {
		switch x := e.(type) {
		case nil:
		case *ast.ParenExpr:
			walkExpr(x.X, target)
		case *ast.CallExpr:
			if live[x] && record(x, target) {
				return
			}
			// A conversion or single-argument wrapper (wireTime) carries
			// the assignment target through to the primitive inside it.
			inner := ""
			if len(x.Args) == 1 && !isBuiltin(c.pass.TypesInfo, x.Fun) {
				inner = target
			}
			for _, a := range x.Args {
				walkExpr(a, inner)
			}
			walkExpr(x.Fun, "")
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					key := ""
					if id, ok := kv.Key.(*ast.Ident); ok {
						key = id.Name
					}
					walkExpr(kv.Value, key)
					continue
				}
				walkExpr(elt, "")
			}
		case *ast.UnaryExpr:
			walkExpr(x.X, target)
		case *ast.StarExpr:
			walkExpr(x.X, target)
		case *ast.BinaryExpr:
			walkExpr(x.X, "")
			walkExpr(x.Y, "")
		case *ast.SelectorExpr:
			walkExpr(x.X, "")
		case *ast.IndexExpr:
			walkExpr(x.X, "")
			walkExpr(x.Index, "")
		case *ast.SliceExpr:
			walkExpr(x.X, "")
			walkExpr(x.Low, "")
			walkExpr(x.High, "")
			walkExpr(x.Max, "")
		case *ast.KeyValueExpr:
			walkExpr(x.Key, "")
			walkExpr(x.Value, "")
		case *ast.TypeAssertExpr:
			walkExpr(x.X, "")
		case *ast.FuncLit:
			// Nested literals are separate functions; their ops are not
			// part of this half's linear sequence.
		}
	}

	walkStmt = func(s ast.Stmt) {
		switch x := s.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, st := range x.List {
				walkStmt(st)
			}
		case *ast.ExprStmt:
			walkExpr(x.X, "")
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Rhs {
					walkExpr(x.Lhs[i], "")
					walkExpr(x.Rhs[i], c.fieldLabel(x.Lhs[i], rangeLabels))
				}
			} else {
				for _, r := range x.Rhs {
					walkExpr(r, "")
				}
			}
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							walkExpr(v, "")
						}
					}
				}
			}
		case *ast.IfStmt:
			walkStmt(x.Init)
			walkExpr(x.Cond, "")
			walkStmt(x.Body)
			walkStmt(x.Else)
		case *ast.ForStmt:
			walkStmt(x.Init)
			walkExpr(x.Cond, "")
			walkStmt(x.Post)
			walkStmt(x.Body)
		case *ast.RangeStmt:
			walkExpr(x.X, "")
			walkStmt(x.Body)
		case *ast.SwitchStmt:
			walkStmt(x.Init)
			walkExpr(x.Tag, "")
			walkStmt(x.Body)
		case *ast.TypeSwitchStmt:
			walkStmt(x.Init)
			walkStmt(x.Assign)
			walkStmt(x.Body)
		case *ast.CaseClause:
			for _, e := range x.List {
				walkExpr(e, "")
			}
			for _, st := range x.Body {
				walkStmt(st)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				walkExpr(r, "")
			}
		case *ast.DeferStmt:
			walkExpr(x.Call, "")
		case *ast.GoStmt:
			walkExpr(x.Call, "")
		case *ast.SendStmt:
			walkExpr(x.Chan, "")
			walkExpr(x.Value, "")
		case *ast.IncDecStmt:
			walkExpr(x.X, "")
		case *ast.LabeledStmt:
			walkStmt(x.Stmt)
		case *ast.SelectStmt:
			walkStmt(x.Body)
		case *ast.CommClause:
			walkStmt(x.Comm)
			for _, st := range x.Body {
				walkStmt(st)
			}
		}
	}
	walkStmt(h.decl.Body)
}

// fieldLabel resolves e to the struct field it reads or writes, when that
// is statically clear: the final name of a selector chain (possibly
// behind conversions, an index, a unary op, or a zero-argument method
// call), or a range variable drawn from such a chain. Bare locals yield
// no label — their names are not stable across the two halves.
func (c *checker) fieldLabel(e ast.Expr, rangeLabels map[types.Object]string) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			if rangeLabels != nil {
				if obj := c.pass.TypesInfo.ObjectOf(x); obj != nil {
					return rangeLabels[obj]
				}
			}
			return ""
		case *ast.CallExpr:
			// A conversion unwraps; a zero-argument method call labels by
			// its receiver chain (d.MaxDay.UnixNano() → MaxDay).
			if tf, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tf.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && len(x.Args) == 0 {
				e = sel.X
				continue
			}
			return ""
		default:
			return ""
		}
	}
}

// checkPair validates one pair's halves against each other.
func (c *checker) checkPair(name string, hs []*half) {
	var enc, dec *half
	for _, h := range hs {
		slot := &enc
		if h.side == "decode" {
			slot = &dec
		}
		if *slot != nil {
			if !c.skip(h.decl.Pos()) {
				c.pass.Reportf(h.decl.Pos(),
					"codec pair %q has two %s halves (%s and %s); each side must be declared exactly once",
					name, h.side, (*slot).obj.Name(), h.obj.Name())
			}
			continue
		}
		*slot = h
	}
	if enc == nil || dec == nil {
		h := enc
		missing := "decode"
		if h == nil {
			h, missing = dec, "encode"
		}
		if !c.skip(h.decl.Pos()) {
			c.pass.Reportf(h.decl.Pos(),
				"codec pair %q declares only its %s half; the %s half is missing from this package — a one-sided codec is schema drift by construction",
				name, h.side, missing)
		}
		return
	}

	n := min(len(enc.ops), len(dec.ops))
	for i := 0; i < n; i++ {
		e, d := enc.ops[i], dec.ops[i]
		if e.kind != d.kind {
			if !c.skip(d.pos) {
				c.pass.Reportf(d.pos,
					"codec pair %q diverges at op %d: encode writes %s but decode reads %s",
					name, i+1, e.describe(), d.describe())
			}
			return
		}
		if e.label != "" && d.label != "" && e.label != d.label {
			if !c.skip(d.pos) {
				c.pass.Reportf(d.pos,
					"codec pair %q field drift at op %d: encode writes %s but decode stores it into %s",
					name, i+1, e.describe(), d.describe())
			}
			return
		}
	}
	if len(enc.ops) != len(dec.ops) {
		longer, verb := enc, "writes"
		if len(dec.ops) > len(enc.ops) {
			longer, verb = dec, "reads"
		}
		extra := longer.ops[n]
		if !c.skip(extra.pos) {
			c.pass.Reportf(extra.pos,
				"codec pair %q is asymmetric: encode emits %d ops but decode consumes %d; the %s half additionally %s %s",
				name, len(enc.ops), len(dec.ops), longer.side, verb, extra.describe())
		}
	}
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isBuiltin(info *types.Info, fun ast.Expr) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isB := info.ObjectOf(id).(*types.Builtin)
	return isB
}
