// Package wireframe defines the SSA-tier botvet analyzer that keeps every
// switch over a wire-protocol enum exhaustive. The BSCW shard protocol and
// the cluster admin verbs are closed constant sets: a frame kind that
// reaches a switch and silently falls through `default` (or off the end)
// is a protocol drift bug — one side learned a new frame and the other
// discards it without an error on the wire.
//
// A named constant type opts in with the `//botvet:wire` comment directive
// on its type declaration. The analyzer then:
//
//   - collects the declared package-level constants of that exact type
//     (the member set), exporting it as a fact so switches in other
//     packages are checked against the same set;
//   - requires every switch whose tag has that type to cover every member
//     value — multi-value case lists count, a `default` clause does NOT:
//     default is for corrupt input, not for known frames.
//
// Duplicate constant values (aliases) count as one member; covering any
// alias covers the value. Audited exceptions carry
// "//botvet:ignore wireframe <reason>" on or above the switch.
package wireframe

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/vetutil"
)

var Analyzer = &analysis.Analyzer{
	Name:      "wireframe",
	Doc:       "switches over //botvet:wire enum types must be exhaustive against the declared constant set",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*enumFact)(nil)},
	Run:       run,
}

// Member is one declared constant of a wire enum: its name and the exact
// string form of its value (the dedup key).
type Member struct {
	Name string
	Val  string
}

// enumFact records the member set of a //botvet:wire type on its TypeName,
// so importing packages check their switches against the declaring
// package's constant set.
type enumFact struct {
	Members []Member
}

func (*enumFact) AFact() {}

func (f *enumFact) String() string {
	names := make([]string, len(f.Members))
	for i, m := range f.Members {
		names[i] = m.Name
	}
	return "wire enum {" + strings.Join(names, ", ") + "}"
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Pass 1: find //botvet:wire type declarations and export their member
	// sets.
	local := map[*types.TypeName]*enumFact{}
	ins.Preorder([]ast.Node{(*ast.GenDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.GenDecl)
		for _, spec := range decl.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if !vetutil.HasDirective(decl.Doc, "botvet:wire") &&
				!vetutil.HasDirective(ts.Doc, "botvet:wire") {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				continue
			}
			basic, ok := obj.Type().Underlying().(*types.Basic)
			if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
				pass.Reportf(ts.Pos(),
					"//botvet:wire type %s must have an integer or string underlying type to form a constant set", obj.Name())
				continue
			}
			fact := &enumFact{Members: declaredMembers(pass.Pkg, obj)}
			if len(fact.Members) == 0 {
				pass.Reportf(ts.Pos(),
					"//botvet:wire type %s declares no package-level constants; the directive is inert", obj.Name())
				continue
			}
			local[obj] = fact
			pass.ExportObjectFact(obj, fact)
		}
	})

	// Pass 2: every switch over a wire enum must cover every member value.
	ins.Preorder([]ast.Node{(*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		sw := n.(*ast.SwitchStmt)
		if sw.Tag == nil {
			return
		}
		tv, ok := pass.TypesInfo.Types[sw.Tag]
		if !ok {
			return
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return
		}
		obj := named.Obj()
		fact := local[obj]
		if fact == nil {
			imported := &enumFact{}
			if obj.Pkg() == nil || !pass.ImportObjectFact(obj, imported) {
				return
			}
			fact = imported
		}
		if vetutil.IsTestFile(pass.Fset, sw.Pos()) ||
			vetutil.Suppressed(pass, sw.Pos(), "wireframe") {
			return
		}

		covered := map[string]bool{}
		for _, clause := range sw.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, e := range cc.List {
				if etv, ok := pass.TypesInfo.Types[e]; ok && etv.Value != nil {
					covered[etv.Value.ExactString()] = true
				}
			}
		}

		var missing []string
		seen := map[string]bool{}
		for _, m := range fact.Members {
			if covered[m.Val] || seen[m.Val] {
				continue
			}
			seen[m.Val] = true
			missing = append(missing, m.Name)
		}
		if len(missing) > 0 {
			pass.Reportf(sw.Pos(),
				"switch over wire enum %s is not exhaustive: missing %s (default does not count; handle every declared frame)",
				obj.Name(), strings.Join(missing, ", "))
		}
	})

	return nil, nil
}

// declaredMembers collects the package-level constants declared with the
// enum's exact type, in declaration order.
func declaredMembers(pkg *types.Package, tn *types.TypeName) []Member {
	var members []Member
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), tn.Type()) {
			continue
		}
		members = append(members, Member{Name: c.Name(), Val: c.Val().ExactString()})
	}
	sort.Slice(members, func(i, j int) bool {
		ci := scope.Lookup(members[i].Name).Pos()
		cj := scope.Lookup(members[j].Name).Pos()
		if ci != cj {
			return ci < cj
		}
		return members[i].Name < members[j].Name
	})
	return members
}
