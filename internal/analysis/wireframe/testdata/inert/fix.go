// Fixture for degenerate //botvet:wire declarations: a memberless enum
// and a non-constant-able underlying type are declaration-site errors.
package fix

//botvet:wire
type empty byte // want `declares no package-level constants`

//botvet:wire
type wrong struct{} // want `must have an integer or string underlying type`
