// Producer half of the cross-package wireframe fixture: the wire enum and
// its member set live here; the fact carries them to importers.
package wire

//botvet:wire
type Kind uint8

const (
	KindSnap Kind = iota
	KindDelta
	KindBye
)
