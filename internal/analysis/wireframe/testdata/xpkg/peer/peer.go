// Consumer half of the cross-package wireframe fixture: switches here are
// checked against the declaring package's constant set via the fact.
package peer

import "fix/wire"

func handle(k wire.Kind) {
	switch k { // want `missing KindBye`
	case wire.KindSnap:
	case wire.KindDelta:
	}
}

func handleAll(k wire.Kind) {
	switch k {
	case wire.KindSnap, wire.KindDelta, wire.KindBye:
	}
}
