// Fixture for the wireframe analyzer: switches over //botvet:wire enums
// must cover every declared constant; default does not count.
package fix

//botvet:wire
type FrameKind byte

const (
	FrameData FrameKind = iota
	FrameAck
	FrameClose
)

// FrameAlias shares FrameData's value: covering either covers the value.
const FrameAlias FrameKind = FrameData

//botvet:wire
type Verb string

const (
	VerbJoin  Verb = "join"
	VerbLeave Verb = "leave"
)

// untracked has no directive; switches over it are never checked.
type untracked int

const (
	uA untracked = iota
	uB
)

func exhaustive(k FrameKind) int {
	switch k {
	case FrameData:
		return 1
	case FrameAck, FrameClose:
		return 2
	}
	return 0
}

func missingOne(k FrameKind) {
	switch k { // want `missing FrameClose`
	case FrameData:
	case FrameAck:
	default:
	}
}

func missingTwo(k FrameKind) {
	switch k { // want `missing FrameAck, FrameClose`
	case FrameData:
	}
}

func stringEnum(v Verb) {
	switch v { // want `missing VerbLeave`
	case VerbJoin:
	}
}

func audited(k FrameKind) {
	//botvet:ignore wireframe ack-only fast path, audited
	switch k {
	case FrameAck:
	}
}

func notTracked(u untracked) {
	switch u {
	case uA:
	}
}

func plainInt(n int) {
	switch n {
	case 1:
	}
}
