package wireframe_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/wireframe"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", wireframe.Analyzer, "fix")
}

func TestInertDeclarations(t *testing.T) {
	atest.Run(t, "testdata/inert", wireframe.Analyzer, "fix")
}

// TestCrossPackage proves the member-set fact flows from the declaring
// package to switches in importers.
func TestCrossPackage(t *testing.T) {
	atest.RunPkgs(t, wireframe.Analyzer, []atest.Pkg{
		{Dir: "testdata/xpkg/wire", Path: "fix/wire"},
		{Dir: "testdata/xpkg/peer", Path: "fix/peer"},
	})
}
