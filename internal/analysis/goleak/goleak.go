// Package goleak defines the SSA-tier botvet analyzer that proves every
// goroutine launched outside tests joinable or cancellable. The serve tier
// is an always-on multi-tenant plane: a goroutine that nothing can stop is
// a slow outage (leaked per connection or per request), not a test flake.
//
// A goroutine's launched function is *joinable* when either:
//
//   - it is cancellable: it reaches a channel receive — <-ctx.Done(), a
//     done-channel receive, a select communication, or a for-range over a
//     channel (the bounded work-queue pattern: closing the queue ends the
//     goroutine) — or a (*sync.WaitGroup).Done call, directly or through
//     static calls (same-package bodies are traversed, cross-package
//     callees consult exported facts); or
//   - it provably runs to completion: its own CFG has no cycle and every
//     channel send in it targets a provably buffered channel (the one-shot
//     result-channel pattern, `errc := make(chan error, 1)`). Calls are
//     assumed to return here — the proof is about the launched body's own
//     shape, which keeps the check useful without whole-program
//     termination analysis.
//
// The distinction matters: calling a run-to-completion helper does NOT
// make a looping goroutine stoppable, so only cancellability propagates
// through calls; run-to-completion applies to the launched function
// itself.
//
// Anything else is reported at the go statement: loops with no receive,
// sends that can block forever on unbuffered or unknown channels, and
// launches whose target cannot be resolved statically.
//
// Independently, `time.After` inside a select that sits on a CFG cycle is
// reported wherever it appears: each iteration allocates a timer the
// runtime holds until it fires, which under a tight retry loop is a leak
// with a wall-clock fuse. Hoist a time.Ticker or a reusable time.Timer.
//
// Audited exceptions carry "//botvet:ignore goleak <reason>" on or above
// the offending line.
package goleak

import (
	"go/types"

	"golang.org/x/tools/go/analysis"

	"botscope/internal/analysis/ssabuild"
	"botscope/internal/analysis/vetutil"
)

var Analyzer = &analysis.Analyzer{
	Name:      "goleak",
	Doc:       "prove every goroutine launched outside tests joinable or cancellable; flag timer churn in select loops",
	Requires:  []*analysis.Analyzer{ssabuild.Analyzer},
	FactTypes: []analysis.Fact{(*joinableFact)(nil)},
	Run:       run,
}

// joinableFact marks a function proven joinable, so goroutines in other
// packages launching it (directly) inherit the proof. Cancel records
// whether the proof is cancellability — only that flavour transfers to
// callers through call chains; a run-to-completion proof covers the
// function itself as a goroutine body and nothing more.
type joinableFact struct {
	Cancel bool
}

func (*joinableFact) AFact() {}

func (f *joinableFact) String() string {
	if f.Cancel {
		return "cancellable"
	}
	return "runs to completion"
}

type checker struct {
	pass       *analysis.Pass
	ssa        *ssabuild.SSA
	cancelMemo map[*ssabuild.Func]bool
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:       pass,
		ssa:        pass.ResultOf[ssabuild.Analyzer].(*ssabuild.SSA),
		cancelMemo: map[*ssabuild.Func]bool{},
	}

	// Export proofs for every named function first, so downstream packages
	// can launch them.
	for _, f := range c.ssa.Funcs {
		if f.Obj == nil {
			continue
		}
		if c.cancellable(f, map[*ssabuild.Func]bool{}) {
			pass.ExportObjectFact(f.Obj, &joinableFact{Cancel: true})
		} else if runsToCompletion(f) {
			pass.ExportObjectFact(f.Obj, &joinableFact{})
		}
	}

	for _, f := range c.ssa.Funcs {
		for _, g := range f.Gos {
			if vetutil.IsTestFile(pass.Fset, g.Node.Pos()) {
				continue
			}
			if vetutil.Suppressed(pass, g.Node.Pos(), "goleak") {
				continue
			}
			c.checkGo(g)
		}
		for _, call := range f.Calls {
			if call.Callee == nil || !call.InSelect || !call.InLoop {
				continue
			}
			if call.Callee.Pkg() == nil || call.Callee.Pkg().Path() != "time" || call.Callee.Name() != "After" {
				continue
			}
			if vetutil.IsTestFile(pass.Fset, call.Node.Pos()) ||
				vetutil.Suppressed(pass, call.Node.Pos(), "goleak") {
				continue
			}
			pass.Reportf(call.Node.Pos(),
				"time.After in a select loop allocates a timer every iteration that the runtime holds until it fires; hoist a time.Ticker or a reusable time.Timer outside the loop")
		}
	}
	return nil, nil
}

// checkGo verifies one goroutine launch.
func (c *checker) checkGo(g ssabuild.Go) {
	switch {
	case g.Lit != nil:
		target := c.ssa.FuncFor(g.Lit)
		if target == nil || !c.joinable(target) {
			c.pass.Reportf(g.Node.Pos(),
				"goroutine is not provably joinable or cancellable: the literal reaches no channel receive, WaitGroup.Done, or run-to-completion proof, so nothing can stop it")
		}
	case g.Callee != nil:
		if target := c.ssa.FuncOf(g.Callee); target != nil {
			if c.joinable(target) {
				return
			}
		} else if g.Callee.Pkg() != nil && g.Callee.Pkg() != c.pass.Pkg {
			// As the goroutine root, either proof flavour suffices.
			if c.pass.ImportObjectFact(g.Callee, &joinableFact{}) {
				return
			}
		}
		c.pass.Reportf(g.Node.Pos(),
			"goroutine launching %s is not provably joinable or cancellable: it reaches no channel receive, WaitGroup.Done, or run-to-completion proof, so nothing can stop it", g.Callee.Name())
	default:
		c.pass.Reportf(g.Node.Pos(),
			"goroutine launches a dynamic target the SSA tier cannot resolve; launch a named function or literal so joinability is provable")
	}
}

// joinable decides a goroutine root: cancellable, or a body that provably
// runs to completion.
func (c *checker) joinable(f *ssabuild.Func) bool {
	return c.cancellable(f, map[*ssabuild.Func]bool{}) || runsToCompletion(f)
}

// runsToCompletion is the root-level structural proof: no CFG cycle and
// only provably buffered sends. Calls are assumed to return.
func runsToCompletion(f *ssabuild.Func) bool {
	if f.HasLoop {
		return false
	}
	for _, s := range f.Sends {
		if !s.Buffered {
			return false
		}
	}
	return true
}

// cancellable reports whether f reaches a channel receive or a
// WaitGroup.Done, directly or through static calls. Memoized; visited
// breaks call cycles (a cycle with no cancel point on it proves nothing).
func (c *checker) cancellable(f *ssabuild.Func, visited map[*ssabuild.Func]bool) bool {
	if v, ok := c.cancelMemo[f]; ok {
		return v
	}
	if visited[f] {
		return false
	}
	visited[f] = true
	ok := c.decideCancellable(f, visited)
	delete(visited, f)
	c.cancelMemo[f] = ok
	return ok
}

func (c *checker) decideCancellable(f *ssabuild.Func, visited map[*ssabuild.Func]bool) bool {
	if len(f.Recvs) > 0 {
		return true
	}
	for _, call := range f.Calls {
		if call.Callee == nil {
			continue
		}
		if isWaitGroupDone(call.Callee) {
			return true
		}
		if target := c.ssa.FuncOf(call.Callee); target != nil {
			if c.cancellable(target, visited) {
				return true
			}
			continue
		}
		if call.Callee.Pkg() != nil && call.Callee.Pkg() != c.pass.Pkg {
			var fact joinableFact
			if c.pass.ImportObjectFact(call.Callee, &fact) && fact.Cancel {
				return true
			}
		}
	}
	return false
}

// isWaitGroupDone matches (*sync.WaitGroup).Done.
func isWaitGroupDone(fn *types.Func) bool {
	if fn.Name() != "Done" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}
