package goleak_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/goleak"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", goleak.Analyzer, "fix")
}

// TestCrossPackage proves joinability facts flow across package
// boundaries: the consumer launches the producer's functions and the
// verdict comes from the producer's exported facts, not the consumer's
// own bodies.
func TestCrossPackage(t *testing.T) {
	atest.RunPkgs(t, goleak.Analyzer, []atest.Pkg{
		{Dir: "testdata/xpkg/producer", Path: "fix/producer"},
		{Dir: "testdata/xpkg/consumer", Path: "fix/consumer"},
	})
}
