// Producer half of the cross-package goleak fixture: Worker is provably
// joinable (bounded queue) and exports a fact; Spin is not.
package producer

func Worker(jobs chan int) {
	for j := range jobs {
		_ = j
	}
}

func Spin() {
	for {
	}
}

// Straight runs to completion: launchable as a goroutine root, but its
// proof must not cancel-prove looping callers.
func Straight() {
	_ = 1 + 1
}
