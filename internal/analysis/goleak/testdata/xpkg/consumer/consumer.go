// Consumer half of the cross-package goleak fixture: launches resolve
// joinability through the producer's exported facts.
package consumer

import "fix/producer"

func ok(jobs chan int) {
	go producer.Worker(jobs)
}

func okStraight() {
	go producer.Straight()
}

func bad() {
	go producer.Spin() // want `launching Spin is not provably joinable`
}

// A cross-package run-to-completion fact is a root proof only: a looping
// literal that calls Straight is still unstoppable.
func badLoopCalling() {
	go func() { // want `not provably joinable or cancellable`
		for {
			producer.Straight()
		}
	}()
}
