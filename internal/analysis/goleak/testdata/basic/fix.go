// Fixture for the goleak analyzer: goroutines that are provably joinable
// or cancellable stay silent; goroutines nothing can stop are flagged.
package fix

import (
	"context"
	"sync"
	"time"
)

// --- negatives: provably joinable or cancellable ---

func ctxWorker(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

func wgWorker(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			_ = i
		}
	}()
}

func oneShot() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

func queueWorker(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

func namedJoinable(jobs chan int) {
	go drain(jobs)
}

func drain(jobs chan int) {
	for j := range jobs {
		_ = j
	}
}

type pump struct{ done chan struct{} }

func (p *pump) run() { <-p.done }

func startPump(p *pump) {
	go p.run()
}

// helperJoinable reaches its receive through a same-package call chain.
func helperJoinable(done chan struct{}) {
	go func() {
		waitOn(done)
	}()
}

func waitOn(done chan struct{}) { <-done }

// --- positives: nothing can stop these ---

func spin() {
	go func() { // want `not provably joinable or cancellable`
		for {
		}
	}()
}

func blockSend(out chan int) {
	go func() { // want `not provably joinable or cancellable`
		out <- 1
	}()
}

func namedLeak() {
	go leaky() // want `launching leaky is not provably joinable`
}

func leaky() {
	for {
	}
}

// A run-to-completion helper must not make a looping caller stoppable:
// only cancellability propagates through calls.
func loopWithHelper() {
	go func() { // want `not provably joinable or cancellable`
		for {
			step()
		}
	}()
}

func step() {}

func dynamicLaunch(fns []func()) {
	go fns[0]() // want `dynamic target`
}

func audited(out chan int) {
	go func() { //botvet:ignore goleak terminated by process exit, audited
		out <- 1
	}()
}

// --- timer churn: independent of goroutines ---

func timerChurn(tick chan int, d time.Duration) {
	for {
		select {
		case <-time.After(d): // want `time.After in a select loop`
			return
		case v := <-tick:
			_ = v
		}
	}
}

func timerOnce(tick chan int, d time.Duration) {
	select {
	case <-time.After(d): // one-shot select: no churn
	case v := <-tick:
		_ = v
	}
}
