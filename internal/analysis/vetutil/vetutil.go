// Package vetutil holds the shared plumbing of the botvet analyzers:
// package scoping, test-file detection, mutex-type checks, and the
// //botvet:allow suppression comment.
package vetutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// InScope reports whether pkgPath is one of paths or lies beneath one of
// them ("a/b" covers "a/b" and "a/b/c", never "a/bc").
func InScope(pkgPath string, paths []string) bool {
	for _, p := range paths {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// SplitList parses a comma-separated flag value into its non-empty,
// space-trimmed elements.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// IsTestFile reports whether pos sits in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Suppressed reports whether the source line holding pos, or the line
// directly above it, carries a "//botvet:allow <name>" or a
// "//botvet:ignore <name> <reason>" comment. These are the escape
// hatches every botvet analyzer honours, so intentional exceptions are
// greppable. The allow form lists one or more analyzer names; the
// ignore form names exactly one analyzer followed by a free-text reason.
func Suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	pp := pass.Fset.Position(pos)
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename != pp.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				cl := pass.Fset.Position(c.Pos()).Line
				if cl != pp.Line && cl != pp.Line-1 {
					continue
				}
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if rest, ok := strings.CutPrefix(text, "botvet:allow"); ok {
					for _, n := range strings.Fields(rest) {
						if n == name {
							return true
						}
					}
				}
				if rest, ok := strings.CutPrefix(text, "botvet:ignore"); ok {
					fields := strings.Fields(rest)
					if len(fields) > 0 && fields[0] == name {
						return true
					}
				}
			}
		}
	}
	return false
}

// LineDirective reports whether the source line holding pos, or the line
// directly above it, carries the given comment directive (e.g.
// "botscope:pinned") — the statement-level analogue of HasDirective for
// annotations that attach to a single go statement or call rather than a
// declaration.
func LineDirective(pass *analysis.Pass, pos token.Pos, directive string) bool {
	pp := pass.Fset.Position(pos)
	for _, f := range pass.Files {
		if pass.Fset.Position(f.Pos()).Filename != pp.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				cl := pass.Fset.Position(c.Pos()).Line
				if cl != pp.Line && cl != pp.Line-1 {
					continue
				}
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
					return true
				}
			}
		}
	}
	return false
}

// HasDirective reports whether the declaration's doc comment group carries
// the given comment directive (e.g. "botscope:shared"): a comment of
// exactly "//<directive>", with no space after the slashes, as gofmt
// preserves for machine-readable directives.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}

// DeclaredWithin reports whether the object's declaration position lies
// inside the source range [lo, hi] — the test the parmerge and hotalloc
// analyzers use to distinguish a closure's own locals and parameters from
// variables captured from the enclosing function (or package scope).
func DeclaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() >= lo && obj.Pos() <= hi
}

// IsMutex reports whether t (or the type it points to) is sync.Mutex or
// sync.RWMutex.
func IsMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// IsRWMutex reports whether t (or the type it points to) is sync.RWMutex.
func IsRWMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "RWMutex"
}

// ReceiverObj resolves the object of a method's receiver variable, or nil.
func ReceiverObj(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fn.Recv.List[0].Names[0]]
}

// SelectorBase peels a selector chain x.a.b down to its root identifier's
// object ("x"), or nil when the expression is not rooted in an identifier.
func SelectorBase(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
