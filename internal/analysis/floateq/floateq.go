// Package floateq defines a botvet analyzer forbidding == and != on
// floating-point operands in the statistics-bearing packages. Exact float
// comparison is how quantile edges, similarity scores, and summary
// statistics silently drift between architectures and refactors; the
// epsilon helpers (stats.ApproxEqual) or a restructure (compare the
// underlying integers, e.g. time.Time.Equal) are required instead. The
// NaN idiom x != x is flagged too — write math.IsNaN(x).
//
// Comparisons where both operands are compile-time constants are allowed
// (they are evaluated exactly, once). _test.go files are skipped: tests
// legitimately pin exact expected values of deterministic arithmetic.
// Intentional exceptions carry "//botvet:allow floateq".
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/vetutil"
)

const defaultScope = "botscope/internal/stats,botscope/internal/core,botscope/internal/stream"

var Analyzer = &analysis.Analyzer{
	Name:     "floateq",
	Doc:      "forbid ==/!= on float operands in statistics packages; use epsilon helpers",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var scopeFlag string

func init() {
	Analyzer.Flags.StringVar(&scopeFlag, "pkgs", defaultScope,
		"comma-separated import paths (with subpackages) the analyzer applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !vetutil.InScope(pass.Pkg.Path(), vetutil.SplitList(scopeFlag)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		if vetutil.IsTestFile(pass.Fset, be.Pos()) {
			return
		}
		xt, yt := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
		if !isFloat(xt.Type) && !isFloat(yt.Type) {
			return
		}
		if xt.Value != nil && yt.Value != nil {
			return // constant comparison, evaluated exactly at compile time
		}
		if vetutil.Suppressed(pass, be.Pos(), "floateq") {
			return
		}
		pass.Reportf(be.Pos(), "float %s comparison; use an epsilon helper (stats.ApproxEqual) or compare exact representations", be.Op)
	})
	return nil, nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
