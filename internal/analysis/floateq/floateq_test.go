package floateq_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/floateq"
)

func TestScoped(t *testing.T) {
	atest.Run(t, "testdata/scoped", floateq.Analyzer, "botscope/internal/stats")
}

func TestUnscoped(t *testing.T) {
	atest.Run(t, "testdata/unscoped", floateq.Analyzer, "example.com/other")
}
