// Package other replays the float comparisons in a package floateq does
// not cover: none may be reported.
package other

func compare(a, b float64) bool {
	return a == b
}
