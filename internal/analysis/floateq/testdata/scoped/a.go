// Package stats seeds floateq violations inside a scoped package path.
package stats

import "math"

const eps = 1e-9

func bad(a, b float64) bool {
	return a == b // want `float == comparison`
}

func badNeq(a, b float64) bool {
	return a != b // want `float != comparison`
}

// The NaN idiom is flagged too: math.IsNaN says what it means.
func nanIdiom(x float64) bool {
	return x != x // want `float != comparison`
}

func zeroSentinel(a float64) bool {
	return a == 0 // want `float == comparison`
}

func f32(a, b float32) bool {
	return a == b // want `float == comparison`
}

func good(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

func ints(a, b int) bool { return a == b }

func constFold() bool {
	return 1.5 == 1.5
}

func isNaN(x float64) bool {
	return math.IsNaN(x)
}

func allowed(a float64) bool {
	return a == 0 //botvet:allow floateq
}
