package lockguard_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/lockguard"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", lockguard.Analyzer, "example.com/basic")
}

func TestTestFilesSkipped(t *testing.T) {
	atest.Run(t, "testdata/skip", lockguard.Analyzer, "example.com/skip")
}
