// Package basic seeds lockguard violations and approved patterns.
package basic

import "sync"

type counter struct {
	mu        sync.Mutex
	n         int      // guarded by mu
	names     []string // guarded by mu
	unguarded int
}

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) Bad() int {
	return c.n // want `access to n \(guarded by mu\) without holding the mutex`
}

func (c *counter) Free() int {
	return c.unguarded
}

// addLocked appends one name.
//
//lockguard:held mu
func (c *counter) addLocked(name string) {
	c.names = append(c.names, name)
}

func (c *counter) Add(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(name)
}

func (c *counter) BadAdd(name string) {
	c.addLocked(name) // want `call to addLocked requires holding mu`
}

func (c *counter) Allowed() int {
	//botvet:allow lockguard
	return c.n
}

// TryInc is the guarded early-return idiom: a failed TryLock exits
// before any guarded access, so TryLock counts as an acquisition.
func (c *counter) TryInc() bool {
	if !c.mu.TryLock() {
		return false
	}
	defer c.mu.Unlock()
	c.n++
	return true
}

// TryEach accesses guarded state from a closure while the enclosing
// function holds the mutex via TryLock.
func (c *counter) TryEach(f func(string)) bool {
	if !c.mu.TryLock() {
		return false
	}
	defer c.mu.Unlock()
	walk := func() {
		for _, name := range c.names {
			f(name)
		}
	}
	walk()
	return true
}

type rw struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func (r *rw) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func (r *rw) BadGet(k string) int {
	return r.m[k] // want `access to m \(guarded by mu\) without holding the mutex`
}

type broken struct {
	mu sync.Mutex
	// guarded by mux
	x int // want `field is 'guarded by mux' but the struct has no mutex field mux`
}

func (b *broken) X() int { return b.x }
