// Package skip shows that _test.go files are exempt: tests poke
// single-goroutine state directly.
package skip

import "sync"

type box struct {
	mu sync.Mutex
	v  int // guarded by mu
}

func peek(b *box) int {
	return b.v
}
