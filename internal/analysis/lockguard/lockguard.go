// Package lockguard defines a botvet analyzer enforcing annotated mutex
// discipline. A struct field whose declaration carries a
//
//	// guarded by <mutexField>
//
// comment may only be read or written inside a function that either
// acquires that mutex itself (calls <mutexField>.Lock, .RLock, or
// .TryLock on the same receiver/variable — TryLock counting on the
// strength of the guarded early-return idiom, where a failed attempt
// exits before any guarded access) or is explicitly documented to run
// with it held via a
//
//	//lockguard:held <mutexField>
//
// comment in its doc. Calls to a lockguard:held function are themselves
// checked: the caller must also hold (acquire or be annotated), which
// propagates the invariant through same-package helpers. Composite
// literals constructing the struct are exempt — a value that has not
// escaped yet cannot be contended. _test.go files are skipped: tests
// exercise single-goroutine state directly.
//
// Intentional exceptions carry "//botvet:allow lockguard".
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/vetutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "lockguard",
	Doc:      "check that fields annotated '// guarded by mu' are only touched with the mutex held",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guard ties a protected field to the mutex field guarding it.
type guard struct {
	mutex *types.Var // the mutex field object
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	guards := collectGuards(pass, ins)
	if len(guards) == 0 {
		return nil, nil
	}
	held := collectHeldAnnotations(pass, ins)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || vetutil.IsTestFile(pass.Fset, decl.Pos()) {
			return
		}
		acquired := acquiredMutexes(pass, decl.Body)
		holds := func(mu *types.Var) bool {
			return acquired[mu] || held[pass.TypesInfo.Defs[decl.Name]][mu] || held[pass.TypesInfo.Defs[decl.Name]][nil]
		}

		ast.Inspect(decl.Body, func(m ast.Node) bool {
			return checkNode(pass, guards, m, holds)
		})

		// Calling a helper documented as needing the lock requires holding it.
		ast.Inspect(decl.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObj(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			reqs, ok := held[callee]
			if !ok {
				return true
			}
			for mu := range reqs {
				if mu != nil && !holds(mu) && !vetutil.Suppressed(pass, call.Pos(), "lockguard") {
					pass.Reportf(call.Pos(), "call to %s requires holding %s", callee.Name(), mu.Name())
				}
			}
			return true
		})
	})
	return nil, nil
}

// checkNode reports guarded-field selector accesses made without the lock.
func checkNode(pass *analysis.Pass, guards map[*types.Var]guard, n ast.Node, holds func(*types.Var) bool) bool {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return true
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return true
	}
	g, guarded := guards[obj]
	if !guarded {
		return true
	}
	if !holds(g.mutex) && !vetutil.Suppressed(pass, sel.Pos(), "lockguard") {
		pass.Reportf(sel.Pos(), "access to %s (guarded by %s) without holding the mutex", obj.Name(), g.mutex.Name())
	}
	return true
}

// collectGuards scans struct declarations for '// guarded by mu' field
// annotations and resolves the named mutex field on the same struct.
func collectGuards(pass *analysis.Pass, ins *inspector.Inspector) map[*types.Var]guard {
	guardIndex := map[*types.Var]guard{}
	ins.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
		st := n.(*ast.StructType)
		// Resolve candidate mutex fields by name first.
		mutexes := map[string]*types.Var{}
		for _, f := range st.Fields.List {
			for _, name := range f.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && vetutil.IsMutex(v.Type()) {
					mutexes[name.Name] = v
				}
			}
		}
		if len(mutexes) == 0 {
			return
		}
		for _, f := range st.Fields.List {
			name := guardAnnotation(f)
			if name == "" {
				continue
			}
			mu, ok := mutexes[name]
			if !ok {
				pass.Reportf(f.Pos(), "field is 'guarded by %s' but the struct has no mutex field %s", name, name)
				continue
			}
			for _, id := range f.Names {
				if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
					guardIndex[v] = guard{mutex: mu}
				}
			}
		}
	})
	return guardIndex
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, or "".
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// collectHeldAnnotations maps function objects to the set of mutex fields
// their doc declares as held by the caller (nil key = "all mutexes of the
// receiver", from a bare lockguard:held).
func collectHeldAnnotations(pass *analysis.Pass, ins *inspector.Inspector) map[types.Object]map[*types.Var]bool {
	out := map[types.Object]map[*types.Var]bool{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Doc == nil {
			return
		}
		obj := pass.TypesInfo.Defs[decl.Name]
		if obj == nil {
			return
		}
		for _, c := range decl.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "lockguard:held")
			if !ok {
				continue
			}
			names := strings.Fields(rest)
			set := out[obj]
			if set == nil {
				set = map[*types.Var]bool{}
				out[obj] = set
			}
			if len(names) == 0 {
				set[nil] = true
				continue
			}
			for _, name := range names {
				if mu := receiverMutex(pass, decl, name); mu != nil {
					set[mu] = true
				} else {
					set[nil] = true
				}
			}
		}
	})
	return out
}

// receiverMutex resolves a mutex field name against the method's receiver
// struct, or nil for non-methods / unknown fields.
func receiverMutex(pass *analysis.Pass, decl *ast.FuncDecl, name string) *types.Var {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[decl.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name && vetutil.IsMutex(f.Type()) {
			return f
		}
	}
	return nil
}

// acquiredMutexes returns the mutex field objects this body locks (Lock,
// RLock, or TryLock) directly.
func acquiredMutexes(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" && sel.Sel.Name != "TryLock") {
			return true
		}
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if v, ok := pass.TypesInfo.Uses[inner.Sel].(*types.Var); ok && vetutil.IsMutex(v.Type()) {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// calleeObj resolves a call target to its declaration object.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}
