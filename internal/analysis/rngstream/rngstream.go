// Package rngstream defines a botvet analyzer that generalizes nodeterm
// for the synthetic-workload generator: under internal/synth and
// internal/botnet the *only* legal randomness is the per-family seeded
// *rand.Rand stream, drawn in a deterministic order. The parallel
// generator's byte-identical-for-any-worker-count guarantee rests on each
// family consuming exactly its own stream in exactly the program order of
// its attacks, so within the scoped packages the analyzer reports:
//
//   - global math/rand (and math/rand/v2) top-level draws — rand.Intn,
//     rand.Float64, rand.Perm, ... share one process-wide stream across
//     families and workers (constructors like rand.New/NewSource stay
//     legal, as do methods on a seeded generator);
//   - wall-clock reads (time.Now / Since / Until) — the classic
//     seed-from-clock and jitter-from-clock escapes;
//   - draws from a *rand.Rand inside a map range — the draw order would
//     follow map iteration, splicing the stream nondeterministically even
//     though the generator itself is seeded.
//
// Intentional exceptions carry "//botvet:allow rngstream" or
// "//botvet:ignore rngstream <reason>".
package rngstream

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/vetutil"
)

const defaultScope = "botscope/internal/synth,botscope/internal/botnet"

var Analyzer = &analysis.Analyzer{
	Name:     "rngstream",
	Doc:      "restrict the generator packages to per-family seeded *rand.Rand streams drawn in deterministic order",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var scopeFlag string

func init() {
	Analyzer.Flags.StringVar(&scopeFlag, "pkgs", defaultScope,
		"comma-separated import paths (with subpackages) the analyzer applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !vetutil.InScope(pass.Pkg.Path(), vetutil.SplitList(scopeFlag)) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if vetutil.IsTestFile(pass.Fset, call.Pos()) {
			return
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
				if !vetutil.Suppressed(pass, call.Pos(), "rngstream") {
					pass.Reportf(call.Pos(),
						"call to time.%s in a seeded-stream package; derive time from the window and the stream, never the wall clock", fn.Name())
				}
			}
		case "math/rand", "math/rand/v2":
			if fn.Type().(*types.Signature).Recv() != nil || strings.HasPrefix(fn.Name(), "New") {
				return // methods on a seeded generator, and constructors, are fine
			}
			if !vetutil.Suppressed(pass, call.Pos(), "rngstream") {
				pass.Reportf(call.Pos(),
					"global %s.%s draws from the process-wide stream; every draw here must come from the family's seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
			}
		}
	})

	// Draws inside map ranges: the stream is seeded, but consuming it in
	// map-iteration order splices it nondeterministically.
	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rng := n.(*ast.RangeStmt)
		if rng.X == nil || vetutil.IsTestFile(pass.Fset, rng.Pos()) {
			return
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			if inner, ok := m.(*ast.RangeStmt); ok && inner != rng {
				return true // the inner range's own visit reports its draws
			}
			call, ok := m.(*ast.CallExpr)
			if !ok || !isRandMethod(pass.TypesInfo, call) {
				return true
			}
			if !vetutil.Suppressed(pass, call.Pos(), "rngstream") {
				pass.Reportf(call.Pos(),
					"*rand.Rand draw inside a map range consumes the seeded stream in map-iteration order; iterate a sorted key slice instead")
			}
			return true
		})
	})
	return nil, nil
}

// isRandMethod reports whether the call is a method on math/rand's (or
// math/rand/v2's) Rand type — a draw from a seeded stream.
func isRandMethod(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "math/rand" && fn.Pkg().Path() != "math/rand/v2" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Rand"
}

// calleeFunc resolves a call's target to a *types.Func, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}
