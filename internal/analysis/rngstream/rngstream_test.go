package rngstream_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/rngstream"
)

func TestScoped(t *testing.T) {
	atest.Run(t, "testdata/basic", rngstream.Analyzer, "botscope/internal/synth")
}

func TestUnscoped(t *testing.T) {
	atest.Run(t, "testdata/unscoped", rngstream.Analyzer, "example.com/outside")
}
