package a

import (
	"math/rand"
	"time"
)

// Outside internal/synth and internal/botnet the same constructs are the
// other analyzers' business; rngstream stays silent.
func unscopedDraws(n int) int64 {
	x := rand.Intn(n)
	now := time.Now()
	return int64(x) + now.Unix()
}

func unscopedMapDraw(rng *rand.Rand, weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w * rng.Float64()
	}
	return total
}
