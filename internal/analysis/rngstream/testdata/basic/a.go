package a

import (
	"math/rand"
	"time"
)

// badGlobalDraws uses the process-wide math/rand stream: every top-level
// draw is shared across families and workers.
func badGlobalDraws(n int) int {
	x := rand.Intn(n)                  // want `global rand.Intn draws from the process-wide stream`
	y := rand.Float64()                // want `global rand.Float64 draws from the process-wide stream`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand.Shuffle draws from the process-wide stream`
	return x + int(y)
}

// badWallClock reads the wall clock for seeds and jitter.
func badWallClock() int64 {
	now := time.Now()    // want `call to time.Now in a seeded-stream package`
	d := time.Since(now) // want `call to time.Since in a seeded-stream package`
	return int64(d)
}

// badMapOrderedDraw consumes the seeded stream in map-iteration order.
func badMapOrderedDraw(rng *rand.Rand, weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w * rng.Float64() // want `draw inside a map range consumes the seeded stream in map-iteration order`
	}
	return total
}

// goodSeededStream draws only from an explicit seeded generator: legal.
func goodSeededStream(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// goodSortedIteration draws inside a slice range: deterministic order, legal.
func goodSortedIteration(rng *rand.Rand, keys []string, weights map[string]float64) float64 {
	total := 0.0
	for _, k := range keys {
		total += weights[k] * rng.Float64()
	}
	return total
}

// goodMapReadOnly ranges over a map without drawing: legal.
func goodMapReadOnly(weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return total
}

// allowedException documents a sanctioned wall-clock read.
func allowedException() time.Time {
	return time.Now() //botvet:ignore rngstream fixture exercises the ignore directive
}
