// Package basic seeds snapshotalias violations and the approved
// deep-copy idioms.
package basic

import "sync"

type reg struct {
	mu    sync.RWMutex
	items map[string]int
	list  []int
	n     int
}

func (r *reg) Items() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.items // want `r\.items \(reference type\) escapes Items while only an RLock is held`
}

func (r *reg) ItemsCopy() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.items))
	for k, v := range r.items {
		out[k] = v
	}
	return out
}

type view struct {
	List []int
}

func (r *reg) View() view {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return view{List: r.list} // want `r\.list \(reference type\) escapes View while only an RLock is held`
}

func (r *reg) ListCopy() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]int(nil), r.list...)
}

func (r *reg) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

// Mutate holds the write lock; snapshotalias only polices read-locked
// paths (writers hand out ownership deliberately).
func (r *reg) Mutate() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.list
}

func (r *reg) unexported() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.list
}

func (r *reg) Allowed() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	//botvet:allow snapshotalias
	return r.list
}

func (r *reg) Lookup(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.items[k]
}
