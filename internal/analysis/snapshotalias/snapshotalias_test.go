package snapshotalias_test

import (
	"testing"

	"botscope/internal/analysis/atest"
	"botscope/internal/analysis/snapshotalias"
)

func TestBasic(t *testing.T) {
	atest.Run(t, "testdata/basic", snapshotalias.Analyzer, "example.com/basic")
}
