// Package snapshotalias defines a botvet analyzer that keeps concurrent
// snapshots alias-free. An exported method that holds only a read lock
// (calls <field>.RLock and never <field>.Lock on a sync.RWMutex field of
// its receiver) must not let a map- or slice-typed receiver field escape
// by reference: once the RLock is released a concurrent writer mutates the
// shared backing store under the caller's feet. Escapes are bare uses of
// the field — returned directly, placed in a composite literal, or
// assigned to another variable. Reading through the field (indexing,
// ranging, len/cap, passing to append/copy as a source, method calls on
// it) is fine: those consume the data without retaining the reference.
//
// Intentional exceptions carry "//botvet:allow snapshotalias".
package snapshotalias

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"botscope/internal/analysis/vetutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "snapshotalias",
	Doc:      "flag exported methods returning internal map/slice fields by reference while holding only an RLock",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || decl.Recv == nil || !decl.Name.IsExported() {
			return
		}
		if vetutil.IsTestFile(pass.Fset, decl.Pos()) {
			return
		}
		recv := vetutil.ReceiverObj(pass.TypesInfo, decl)
		if recv == nil {
			return
		}
		rlocked, wlocked := lockCalls(pass, decl.Body, recv)
		if !rlocked || wlocked {
			return
		}
		checkEscapes(pass, decl, recv)
	})
	return nil, nil
}

// lockCalls reports whether the body calls RLock (and/or Lock) on a
// sync.RWMutex field of the receiver.
func lockCalls(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) (rlocked, wlocked bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Lock" && name != "RLock" {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || !vetutil.IsRWMutex(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		if vetutil.SelectorBase(pass.TypesInfo, inner.X) != recv {
			return true
		}
		if name == "RLock" {
			rlocked = true
		} else {
			wlocked = true
		}
		return true
	})
	return rlocked, wlocked
}

// checkEscapes reports bare, reference-retaining uses of the receiver's
// map/slice fields within the method body.
func checkEscapes(pass *analysis.Pass, decl *ast.FuncDecl, recv types.Object) {
	// consumed marks selector expressions that appear in a position that
	// reads through the reference instead of retaining it.
	consumed := map[*ast.SelectorExpr]bool{}
	markSel := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			consumed[sel] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IndexExpr:
			markSel(x.X)
		case *ast.SliceExpr:
			// A reslice still aliases the backing array; not consumed.
		case *ast.RangeStmt:
			markSel(x.X)
		case *ast.CallExpr:
			// len/cap/delete/clear consume; append/copy consume their
			// *source* operands (the destination is fresh storage the
			// caller owns). A method call on the field consumes it too.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				markSel(sel.X) // receiver of a method call
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
					switch b.Name() {
					case "len", "cap", "delete", "clear":
						for _, a := range x.Args {
							markSel(a)
						}
					case "append":
						for _, a := range x.Args[1:] {
							markSel(a)
						}
					case "copy":
						if len(x.Args) == 2 {
							markSel(x.Args[1])
						}
					}
				}
			}
		case *ast.AssignStmt:
			// Writing *into* the field (s.f[k] = v) is not an escape; the
			// IndexExpr case already consumes it.
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || consumed[sel] {
			return true
		}
		field, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !field.IsField() {
			return true
		}
		if vetutil.SelectorBase(pass.TypesInfo, sel.X) != recv {
			return true
		}
		switch field.Type().Underlying().(type) {
		case *types.Map, *types.Slice:
		default:
			return true
		}
		if vetutil.Suppressed(pass, sel.Pos(), "snapshotalias") {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s (reference type) escapes %s while only an RLock is held; deep-copy it before returning",
			recv.Name(), field.Name(), decl.Name.Name)
		return true
	})
}
