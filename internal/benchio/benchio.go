// Package benchio defines the BENCH_<n>.json performance-trajectory
// schema shared by the offline pipeline harness (cmd/botbench) and the
// serve-tier load harness (cmd/botload): timed phases, optional load-test
// latency metrics, baseline speedups, and the trajectory auto-numbering
// scan. Keeping the schema in one place lets both harnesses append to the
// same committed sequence of reports.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// Schema identifies the report format.
const Schema = "botscope-bench/v1"

// Phase is one timed pipeline stage.
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Detail  string  `json:"detail,omitempty"`
	// SpeedupVsBaseline is baseline-seconds / seconds for the phase with the
	// same name in the -baseline file, when one was given and matches.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// EndpointStat is one endpoint's share of a load run.
type EndpointStat struct {
	Path     string `json:"path"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
}

// LoadReport captures a serve-tier load run: how the tier was deployed,
// how hard it was driven, and the latency distribution it sustained.
type LoadReport struct {
	Mode            string  `json:"mode"` // "direct" (in-process) or "http"
	Shards          int     `json:"shards,omitempty"`
	Clients         int     `json:"clients"`
	DurationSeconds float64 `json:"duration_seconds"`
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	ErrorRate       float64 `json:"error_rate"`
	RequestsPerSec  float64 `json:"requests_per_sec"`

	LatencyMsP50  float64 `json:"latency_ms_p50"`
	LatencyMsP99  float64 `json:"latency_ms_p99"`
	LatencyMsP999 float64 `json:"latency_ms_p999"`
	LatencyMsMax  float64 `json:"latency_ms_max"`

	Endpoints []EndpointStat `json:"endpoints,omitempty"`
}

// Report is the schema of a BENCH_<n>.json file.
type Report struct {
	Schema      string  `json:"schema"`
	GeneratedAt string  `json:"generated_at"`
	Commit      string  `json:"commit,omitempty"`
	Scale       float64 `json:"scale"`
	Seed        int64   `json:"seed"`
	Workers     int     `json:"workers,omitempty"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Note        string  `json:"note,omitempty"`
	// Baseline names the BENCH file the speedup columns compare against.
	Baseline    string      `json:"baseline,omitempty"`
	Phases      []Phase     `json:"phases"`
	Experiments []Phase     `json:"experiments,omitempty"`
	Load        *LoadReport `json:"load,omitempty"`
}

// ApplyBaseline fills SpeedupVsBaseline on every phase (and experiment)
// whose name also appears in the baseline report at path.
func ApplyBaseline(rep *Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	rep.Baseline = filepath.Base(path)
	index := func(phases []Phase) map[string]float64 {
		m := make(map[string]float64, len(phases))
		for _, p := range phases {
			m[p.Name] = p.Seconds
		}
		return m
	}
	annotate := func(phases []Phase, base map[string]float64) {
		for i := range phases {
			if sec, ok := base[phases[i].Name]; ok && phases[i].Seconds > 0 {
				phases[i].SpeedupVsBaseline = sec / phases[i].Seconds
			}
		}
	}
	annotate(rep.Phases, index(base.Phases))
	annotate(rep.Experiments, index(base.Experiments))
	return nil
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextBenchPath returns dir/BENCH_<n+1>.json where n is the highest
// existing index in the trajectory (BENCH_1.json when none exist).
func NextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 1
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n+1 > next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

// WriteReport marshals rep to path as indented JSON with a trailing
// newline, the committed trajectory format.
func WriteReport(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
