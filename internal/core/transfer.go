package core

import (
	"fmt"

	"botscope/internal/dataset"
	"botscope/internal/stats"
	"botscope/internal/timeseries"
)

// The paper's introduction argues that behaviors "once learned in one
// family can be used to understand behavior in other families". This file
// tests that claim mechanically: fit the dispersion model on a source
// family, apply its coefficients unchanged to a target family's series,
// and compare against a natively fitted model.

// TransferResult scores cross-family model transfer for one (source,
// target) pair.
type TransferResult struct {
	Source dataset.Family
	Target dataset.Family
	// TransferSimilarity is the cosine similarity of one-step forecasts on
	// the target's evaluation half using the source-fitted model.
	TransferSimilarity float64
	// NativeSimilarity is the same with a model fitted on the target's own
	// training half.
	NativeSimilarity float64
	// Retention is transfer/native — how much predictive power survives
	// the transfer (1.0 means the source model works as well as native).
	Retention float64
}

// TransferPredict fits ARIMA on source's dispersion series and evaluates
// it one-step-ahead on target's series (second half), against a natively
// fitted reference. Both families need at least minSeries points. The
// series come from IndexFor's memoized index, so repeated pairs over the
// same store never recompute a family's dispersion scan.
func TransferPredict(s *dataset.Store, source, target dataset.Family, order timeseries.Order, minSeries int) (*TransferResult, error) {
	ix := IndexFor(s)
	src := DispersionValues(ix.Series(source))
	tgt := DispersionValues(ix.Series(target))
	return transferFromSeries(source, target, src, tgt, order, minSeries)
}

func transferFromSeries(source, target dataset.Family, src, tgt []float64, order timeseries.Order, minSeries int) (*TransferResult, error) {
	if minSeries <= 0 {
		minSeries = 60
	}
	if len(src) < minSeries {
		return nil, fmt.Errorf("core: source %s has %d dispersion points, need %d", source, len(src), minSeries)
	}
	if len(tgt) < minSeries {
		return nil, fmt.Errorf("core: target %s has %d dispersion points, need %d", target, len(tgt), minSeries)
	}
	srcModel, err := timeseries.Fit(src, order)
	if err != nil {
		return nil, fmt.Errorf("core: fit source %s: %w", source, err)
	}
	muTrain, nativeSim, err := nativeFit(target, tgt, order)
	if err != nil {
		return nil, err
	}
	return transferScore(source, target, srcModel, tgt, muTrain, nativeSim)
}

// nativeFit fits the target's own model on its training half and scores
// its one-step forecasts on the evaluation half. Both outputs depend only
// on the target, so TransferMatrix computes them once per family and
// reuses them for every source.
func nativeFit(target dataset.Family, tgt []float64, order timeseries.Order) (muTrain, nativeSim float64, err error) {
	split := len(tgt) / 2
	muTrain = stats.Mean(tgt[:split])
	nativeModel, err := timeseries.Fit(tgt[:split], order)
	if err != nil {
		return 0, 0, fmt.Errorf("core: fit native %s: %w", target, err)
	}
	nativePreds, err := nativeModel.OneStepForecasts(tgt, split)
	if err != nil {
		return 0, 0, err
	}
	clampNonNegative(nativePreds)
	nativeSim, err = stats.CosineSimilarity(nativePreds, tgt[split:])
	if err != nil {
		return 0, 0, err
	}
	return muTrain, nativeSim, nil
}

// transferScore applies a source-fitted model to the target's evaluation
// half. The coefficients come from the source family; the mean is
// re-anchored to the target's training mean (levels differ per family,
// shapes transfer).
func transferScore(source, target dataset.Family, srcModel *timeseries.Model, tgt []float64, muTrain, nativeSim float64) (*TransferResult, error) {
	split := len(tgt) / 2
	truth := tgt[split:]
	transferred := &timeseries.Model{
		Order:  srcModel.Order,
		Mu:     muTrain,
		AR:     srcModel.AR,
		MA:     srcModel.MA,
		Sigma2: srcModel.Sigma2,
	}
	transferPreds, err := transferred.OneStepForecasts(tgt, split)
	if err != nil {
		return nil, fmt.Errorf("core: transfer forecast %s->%s: %w", source, target, err)
	}
	clampNonNegative(transferPreds)
	transferSim, err := stats.CosineSimilarity(transferPreds, truth)
	if err != nil {
		return nil, err
	}

	res := &TransferResult{
		Source:             source,
		Target:             target,
		TransferSimilarity: transferSim,
		NativeSimilarity:   nativeSim,
	}
	if !stats.IsZero(nativeSim) {
		res.Retention = transferSim / nativeSim
	}
	return res, nil
}

func clampNonNegative(xs []float64) {
	for i, x := range xs {
		if x < 0 {
			xs[i] = 0
		}
	}
}

// TransferMatrix evaluates every ordered pair of the given families and
// returns the successful results. Pairs whose series are too short or
// whose fits fail are skipped.
func TransferMatrix(s *dataset.Store, families []dataset.Family, order timeseries.Order, minSeries int) []*TransferResult {
	var out []*TransferResult
	for _, src := range families {
		for _, tgt := range families {
			if src == tgt {
				continue
			}
			res, err := TransferPredict(s, src, tgt, order, minSeries)
			if err != nil {
				continue
			}
			out = append(out, res)
		}
	}
	return out
}
