package core

import (
	"net/netip"
	"testing"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/geo"
)

// dispersionFixture builds a store whose attacks have overlapping
// many-bot formations — the shape the dense dispersion kernel is tuned
// for.
func dispersionFixture(t testing.TB) *dataset.Store {
	t.Helper()
	bots := make([]*dataset.Bot, 0, 200)
	for i := 0; i < 200; i++ {
		bots = append(bots, &dataset.Bot{
			IP:          netip.AddrFrom4([4]byte{10, 1, byte(i / 200), byte(i % 200)}),
			ASN:         100,
			CountryCode: "BR",
			City:        "Sao Paulo",
			Org:         "Sao Paulo Net 1",
			Lat:         float64(i%90) - 45,
			Lon:         float64((i*7)%360) - 180,
		})
	}
	attacks := make([]*dataset.Attack, 0, 50)
	for i := 0; i < 50; i++ {
		a := mkAttack(dataset.DDoSID(i+1), dataset.Dirtjumper, 1, "5.5.5.5",
			t0.Add(time.Duration(i)*time.Hour), time.Hour)
		a.BotIPs = nil
		for j := 0; j < 40; j++ {
			a.BotIPs = append(a.BotIPs, bots[(i*13+j)%len(bots)].IP)
		}
		attacks = append(attacks, a)
	}
	s, err := dataset.NewStore(attacks, nil, bots)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDispersionScanZeroAlloc pins the tentpole property of the scan: once
// the per-family scratch buffer has grown to the largest formation,
// computing one attack's dispersion allocates nothing.
func TestDispersionScanZeroAlloc(t *testing.T) {
	s := dispersionFixture(t)
	ix := s.BotDense()
	scratch := make([]geo.CachedPoint, 0, s.AttackAt(0).Magnitude())
	allocs := testing.AllocsPerRun(100, func() {
		pts := appendRowPoints(scratch[:0], ix, 0)
		if _, ok := geo.DispersionCached(pts); !ok {
			t.Fatal("dispersion not ok")
		}
	})
	if allocs != 0 {
		t.Errorf("per-attack dispersion allocates %.1f objects, want 0", allocs)
	}
}

// TestDenseDispersionMatchesMapScan recomputes the series with the old
// map-resolving, per-attack-allocating approach and requires bit-equal
// values: the dense index is a pure representation change.
func TestDenseDispersionMatchesMapScan(t *testing.T) {
	s := dispersionFixture(t)
	for _, f := range s.Families() {
		got := DispersionSeries(s, f)
		var want []DispersionPoint
		for _, a := range s.ByFamily(f) {
			pts := make([]geo.LatLon, 0, len(a.BotIPs))
			for _, ip := range a.BotIPs {
				if b, ok := s.Bot(ip); ok {
					pts = append(pts, geo.LatLon{Lat: b.Lat, Lon: b.Lon})
				}
			}
			if len(pts) == 0 {
				continue
			}
			d, ok := geo.Dispersion(pts)
			if !ok {
				continue
			}
			want = append(want, DispersionPoint{AttackID: a.ID, Value: d})
		}
		if len(got) != len(want) {
			t.Fatalf("family %s: %d points dense, %d points reference", f, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("family %s point %d: dense %+v, reference %+v", f, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkDispersionSeries(b *testing.B) {
	s := dispersionFixture(b)
	f := s.Families()[0]
	DispersionSeries(s, f) // build the index outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := DispersionSeries(s, f); len(got) == 0 {
			b.Fatal("empty series")
		}
	}
}
