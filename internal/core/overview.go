// Package core implements the paper's analyses: attack overview (types,
// daily distribution, intervals, durations — §III), source and target
// geolocation analysis with ARIMA prediction (§IV), and collaboration
// detection, both concurrent and multistage (§V).
//
// Every function consumes an indexed dataset.Store and returns plain data
// structures that internal/report renders and internal/experiments checks
// against the paper.
package core

import (
	"fmt"
	"sort"
	"time"

	"botscope/internal/dataset"
)

// ProtocolCount is one row of the attack-type breakdown (Fig 1).
type ProtocolCount struct {
	Category dataset.Category
	Count    int
}

// ProtocolBreakdown counts attacks per category, ordered by count
// descending (ties by category order). This regenerates Figure 1.
func ProtocolBreakdown(s *dataset.Store) []ProtocolCount {
	counts := make(map[dataset.Category]int)
	for i, n := 0, s.AttackRows(); i < n; i++ {
		counts[s.AttackAt(i).Category()]++
	}
	out := make([]ProtocolCount, 0, len(counts))
	for _, c := range dataset.Categories {
		if counts[c] > 0 {
			out = append(out, ProtocolCount{Category: c, Count: counts[c]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// FamilyProtocolRow is one row of Table II: a (protocol, family) pair with
// its attack count.
type FamilyProtocolRow struct {
	Category dataset.Category
	Family   dataset.Family
	Count    int
}

// FamilyProtocolTable counts attacks per (category, family), ordered like
// the paper's Table II: categories in display order, families
// alphabetically inside each.
func FamilyProtocolTable(s *dataset.Store) []FamilyProtocolRow {
	counts := make(map[dataset.Category]map[dataset.Family]int)
	for i, n := 0, s.AttackRows(); i < n; i++ {
		v := s.AttackAt(i)
		cat := v.Category()
		if counts[cat] == nil {
			counts[cat] = make(map[dataset.Family]int)
		}
		counts[cat][v.Family()]++
	}
	var out []FamilyProtocolRow
	for _, c := range dataset.Categories {
		fams := make([]dataset.Family, 0, len(counts[c]))
		for f := range counts[c] {
			fams = append(fams, f)
		}
		sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
		for _, f := range fams {
			out = append(out, FamilyProtocolRow{Category: c, Family: f, Count: counts[c][f]})
		}
	}
	return out
}

// DailyCount is one day of the attack-density series (Fig 2).
type DailyCount struct {
	Day   time.Time // midnight UTC of the day
	Count int
	// ByFamily breaks the day down per family.
	ByFamily map[dataset.Family]int
}

// DailyStats summarizes the daily distribution: the paper reports an
// average of 243 attacks/day and a 983-attack maximum on Aug 30, 2012.
type DailyStats struct {
	Days    []DailyCount
	Average float64
	MaxDay  time.Time
	Max     int
	// MaxDominantFamily is the family contributing most attacks on the
	// peak day (Dirtjumper in the paper).
	MaxDominantFamily dataset.Family
}

// DailyDistribution buckets attacks per UTC day (by start time) and
// returns the Fig 2 series with its headline statistics. The error is
// non-nil for an empty store.
func DailyDistribution(s *dataset.Store) (DailyStats, error) {
	first, _, ok := s.TimeBounds()
	if !ok {
		return DailyStats{}, fmt.Errorf("core: empty workload")
	}
	dayStart := time.Date(first.Year(), first.Month(), first.Day(), 0, 0, 0, 0, time.UTC)
	byDay := make(map[int]*DailyCount)
	for i, n := 0, s.AttackRows(); i < n; i++ {
		v := s.AttackAt(i)
		d := int(v.Start().Sub(dayStart).Hours() / 24)
		dc := byDay[d]
		if dc == nil {
			dc = &DailyCount{
				Day:      dayStart.AddDate(0, 0, d),
				ByFamily: make(map[dataset.Family]int),
			}
			byDay[d] = dc
		}
		dc.Count++
		dc.ByFamily[v.Family()]++
	}
	idx := make([]int, 0, len(byDay))
	for d := range byDay {
		idx = append(idx, d)
	}
	sort.Ints(idx)

	stats := DailyStats{Days: make([]DailyCount, 0, len(idx))}
	total := 0
	for _, d := range idx {
		dc := byDay[d]
		stats.Days = append(stats.Days, *dc)
		total += dc.Count
		if dc.Count > stats.Max {
			stats.Max = dc.Count
			stats.MaxDay = dc.Day
			best, bestN := dataset.Family(""), 0
			for f, n := range dc.ByFamily {
				if n > bestN || (n == bestN && f < best) {
					best, bestN = f, n
				}
			}
			stats.MaxDominantFamily = best
		}
	}
	if len(idx) > 0 {
		// Average over the covered span (including zero-attack days),
		// matching the paper's attacks-per-day figure.
		span := idx[len(idx)-1] - idx[0] + 1
		stats.Average = float64(total) / float64(span)
	}
	return stats, nil
}

// ActivityWindow describes when a family was active (first to last attack)
// and how much of the observation window that covers.
type ActivityWindow struct {
	Family   dataset.Family
	First    time.Time
	Last     time.Time
	Attacks  int
	Coverage float64 // fraction of the whole observation window
}

// FamilyActivity computes per-family activity windows, sorted by attack
// count descending (Dirtjumper first in the paper's data).
func FamilyActivity(s *dataset.Store) []ActivityWindow {
	first, last, ok := s.TimeBounds()
	if !ok {
		return nil
	}
	span := last.Sub(first).Seconds()
	var out []ActivityWindow
	for _, f := range s.Families() {
		rows := s.RowsByFamily(f)
		w := ActivityWindow{
			Family:  f,
			First:   s.AttackAt(int(rows[0])).Start(),
			Last:    s.AttackAt(int(rows[len(rows)-1])).Start(),
			Attacks: len(rows),
		}
		if span > 0 {
			w.Coverage = w.Last.Sub(w.First).Seconds() / span
		}
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attacks != out[j].Attacks {
			return out[i].Attacks > out[j].Attacks
		}
		return out[i].Family < out[j].Family
	})
	return out
}
