package core

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/synth"
)

var t0 = time.Date(2012, 8, 29, 0, 0, 0, 0, time.UTC)

var (
	synthOnce  sync.Once
	synthStore *dataset.Store
	synthErr   error
)

// synthWorkload returns a shared scaled-down paper workload.
func synthWorkload(t *testing.T) *dataset.Store {
	t.Helper()
	synthOnce.Do(func() {
		synthStore, synthErr = synth.GenerateStore(synth.Config{Seed: 99, Scale: 0.05})
	})
	if synthErr != nil {
		t.Fatal(synthErr)
	}
	return synthStore
}

// mkAttack builds a valid attack with common defaults.
func mkAttack(id dataset.DDoSID, f dataset.Family, botnet dataset.BotnetID, target string, start time.Time, dur time.Duration) *dataset.Attack {
	return &dataset.Attack{
		ID:            id,
		BotnetID:      botnet,
		Family:        f,
		Category:      dataset.CategoryHTTP,
		TargetIP:      netip.MustParseAddr(target),
		Start:         start,
		End:           start.Add(dur),
		BotIPs:        []netip.Addr{netip.MustParseAddr("9.9.9.9")},
		TargetASN:     100,
		TargetCountry: "US",
		TargetCity:    "Ashburn",
		TargetOrg:     "Ashburn Hosting 1",
		TargetLat:     39.0,
		TargetLon:     -77.5,
	}
}

// mustStore indexes attacks (plus optional bots) or fails the test.
func mustStore(t *testing.T, attacks []*dataset.Attack, bots ...*dataset.Bot) *dataset.Store {
	t.Helper()
	s, err := dataset.NewStore(attacks, nil, bots)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
