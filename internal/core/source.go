package core

import (
	"fmt"
	"sort"

	"botscope/internal/dataset"
	"botscope/internal/geo"
	"botscope/internal/stats"
)

// SymmetryToleranceKm is the dispersion below which a bot formation is
// treated as geographically symmetric ("zero" in the paper's Figs 9-11).
// The paper's commercial geocoder snapped bots to city centroids, making
// exact zeros possible; with per-IP jitter a small tolerance stands in.
const SymmetryToleranceKm = 150.0

// DispersionPoint is the paper's geolocation-distribution value of one
// attack: |sum of signed distances| of its bots around their center.
type DispersionPoint struct {
	AttackID dataset.DDoSID
	Value    float64 // km
}

// DispersionSeries computes each attack's dispersion for one family, in
// chronological order (the raw series behind Figs 9-13). Bots whose IPs
// cannot be resolved in the Botlist are skipped; attacks with no
// resolvable bots are dropped.
//
// The scan runs on the store's dense bot index: resolving a bot is an
// array load instead of a map lookup, its trigonometry is precomputed,
// and one scratch buffer serves every attack in the family — the loop
// allocates nothing beyond the result slice once the scratch has grown to
// the largest formation.
//
//botscope:hotpath
func DispersionSeries(s *dataset.Store, f dataset.Family) []DispersionPoint {
	rows := s.RowsByFamily(f)
	ix := s.BotDense()
	out := make([]DispersionPoint, 0, len(rows))
	var scratch []geo.CachedPoint
	for _, row := range rows {
		scratch = appendRowPoints(scratch[:0], ix, int(row))
		if len(scratch) == 0 {
			continue
		}
		d, ok := geo.DispersionCached(scratch)
		if !ok {
			continue
		}
		out = append(out, DispersionPoint{AttackID: s.AttackAt(int(row)).ID(), Value: d})
	}
	return out
}

// appendRowPoints appends attack row i's resolvable bot locations to
// dst, in source order — the column-cursor equivalent of the old
// record-keyed appendBotPoints, so the scan never touches the record
// face.
//
//botscope:hotpath
func appendRowPoints(dst []geo.CachedPoint, ix *dataset.BotIndex, row int) []geo.CachedPoint {
	for _, id := range ix.RefsRow(row) {
		if ix.Resolved(id) {
			dst = append(dst, ix.Point(id))
		}
	}
	return dst
}

// DispersionValues strips a series down to its float values.
func DispersionValues(series []DispersionPoint) []float64 {
	out := make([]float64, len(series))
	for i, p := range series {
		out[i] = p.Value
	}
	return out
}

// DispersionProfile is the per-family §IV-A characterization: how often
// the formation is symmetric, and the statistics of the asymmetric part.
// The paper reports Pandora 76.7% symmetric with asymmetric mean ~566 km,
// and Blackenergy 89.5% symmetric with asymmetric mean ~4,304 km.
type DispersionProfile struct {
	Family        dataset.Family
	N             int
	SymmetricFrac float64
	// Asymmetric summarizes the values above the symmetry tolerance.
	Asymmetric stats.Summary
}

// ProfileDispersion builds a family's dispersion profile. The error is
// non-nil when the family has no usable attacks.
func ProfileDispersion(s *dataset.Store, f dataset.Family) (DispersionProfile, error) {
	return profileFromSeries(f, DispersionSeries(s, f))
}

func profileFromSeries(f dataset.Family, series []DispersionPoint) (DispersionProfile, error) {
	if len(series) == 0 {
		return DispersionProfile{}, fmt.Errorf("core: family %s has no dispersion data", f)
	}
	asym := make([]float64, 0, len(series))
	symmetric := 0
	for _, p := range series {
		if p.Value <= SymmetryToleranceKm {
			symmetric++
		} else {
			asym = append(asym, p.Value)
		}
	}
	return DispersionProfile{
		Family:        f,
		N:             len(series),
		SymmetricFrac: float64(symmetric) / float64(len(series)),
		Asymmetric:    stats.Summarize(asym),
	}, nil
}

// DispersionCDF builds the Fig 9 per-family CDF over all dispersion values
// (symmetric included).
func DispersionCDF(s *dataset.Store, f dataset.Family) (*stats.ECDF, error) {
	return cdfFromSeries(f, DispersionSeries(s, f))
}

func cdfFromSeries(f dataset.Family, series []DispersionPoint) (*stats.ECDF, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("core: family %s has no dispersion data", f)
	}
	return stats.NewECDF(DispersionValues(series)), nil
}

// DispersionHistogram builds the Figs 10/11 histogram of the asymmetric
// dispersion values (symmetric ones removed, exactly as the paper does).
func DispersionHistogram(s *dataset.Store, f dataset.Family, bins int) (*stats.Histogram, error) {
	return histogramFromSeries(f, DispersionSeries(s, f), bins)
}

func histogramFromSeries(f dataset.Family, series []DispersionPoint, bins int) (*stats.Histogram, error) {
	asym := make([]float64, 0, len(series))
	for _, p := range series {
		if p.Value > SymmetryToleranceKm {
			asym = append(asym, p.Value)
		}
	}
	if len(asym) == 0 {
		return nil, fmt.Errorf("core: family %s has no asymmetric dispersion values", f)
	}
	hi := stats.Max(asym) * 1.01
	h, err := stats.NewHistogram(0, hi, bins)
	if err != nil {
		return nil, err
	}
	h.AddAll(asym)
	return h, nil
}

// ActiveDispersionFamilies returns the families with at least minPoints
// dispersion observations, sorted by count descending. Fig 9 reports the
// six families with >= 10 snapshots.
//
// The per-family series are served from IndexFor's memoized
// DispersionIndex: callers outside the Workloads plumbing (report tools,
// ad-hoc filters) used to recompute every family's series on each call,
// which made this the most expensive "cheap" query in the package.
func ActiveDispersionFamilies(s *dataset.Store, minPoints int) []dataset.Family {
	return IndexFor(s).ActiveFamilies(minPoints)
}

func activeFamiliesFrom(families []dataset.Family, seriesOf func(dataset.Family) []DispersionPoint, minPoints int) []dataset.Family {
	type fc struct {
		f dataset.Family
		n int
	}
	var list []fc
	for _, f := range families {
		if n := len(seriesOf(f)); n >= minPoints {
			list = append(list, fc{f: f, n: n})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].f < list[j].f
	})
	out := make([]dataset.Family, len(list))
	for i, x := range list {
		out[i] = x.f
	}
	return out
}

// AttackerTargetDistance returns, for each attack of a family, the
// distance in km between the bot formation's center and the target — the
// quantity behind the paper's "average distance between attackers and
// targets is about 3,500 km" observation.
//
//botscope:hotpath
func AttackerTargetDistance(s *dataset.Store, f dataset.Family) []float64 {
	rows := s.RowsByFamily(f)
	ix := s.BotDense()
	out := make([]float64, 0, len(rows))
	var scratch []geo.CachedPoint
	for _, row := range rows {
		scratch = appendRowPoints(scratch[:0], ix, int(row))
		if len(scratch) == 0 {
			continue
		}
		center, ok := geo.CenterCached(scratch)
		if !ok {
			continue
		}
		v := s.AttackAt(int(row))
		out = append(out, geo.Haversine(center, geo.LatLon{Lat: v.TargetLat(), Lon: v.TargetLon()}))
	}
	return out
}
