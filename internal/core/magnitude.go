package core

import (
	"fmt"
	"sort"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/stats"
)

// The paper uses the number of source IPs as the attack-magnitude measure
// (§III-B: bots do not spoof, so IP counts are meaningful). This file
// characterizes magnitudes per family and the workload's concurrent attack
// load over time — the "on average, there was 243 simultaneous verified
// DDoS attacks" observation of §II-B.

// Magnitudes returns every attack's magnitude in start-time order.
func Magnitudes(s *dataset.Store) []float64 {
	attacks := s.Attacks()
	out := make([]float64, 0, len(attacks))
	for _, a := range attacks {
		out = append(out, float64(a.Magnitude()))
	}
	return out
}

// FamilyMagnitudes returns one family's magnitudes in start-time order.
func FamilyMagnitudes(s *dataset.Store, f dataset.Family) []float64 {
	attacks := s.ByFamily(f)
	out := make([]float64, 0, len(attacks))
	for _, a := range attacks {
		out = append(out, float64(a.Magnitude()))
	}
	return out
}

// MagnitudeProfile summarizes one family's attack strength.
type MagnitudeProfile struct {
	Family dataset.Family

	stats.Summary
	// DurationCorrelation is the Pearson correlation between an attack's
	// magnitude and its duration; near zero in the paper's data (strength
	// and persistence are independent levers).
	DurationCorrelation float64
}

// ProfileMagnitudes builds a family's magnitude profile. The error is
// non-nil for a family without attacks.
func ProfileMagnitudes(s *dataset.Store, f dataset.Family) (MagnitudeProfile, error) {
	attacks := s.ByFamily(f)
	if len(attacks) == 0 {
		return MagnitudeProfile{}, fmt.Errorf("core: family %s has no attacks", f)
	}
	mags := make([]float64, len(attacks))
	durs := make([]float64, len(attacks))
	for i, a := range attacks {
		mags[i] = float64(a.Magnitude())
		durs[i] = a.Duration().Seconds()
	}
	prof := MagnitudeProfile{Family: f, Summary: stats.Summarize(mags)}
	if corr, err := stats.PearsonCorrelation(mags, durs); err == nil {
		prof.DurationCorrelation = corr
	}
	return prof, nil
}

// LoadPoint is one step of the concurrent-attack load series: how many
// attacks are in progress just after Time.
type LoadPoint struct {
	Time   time.Time
	Active int
}

// ConcurrentLoad sweeps the workload and returns the number of in-progress
// attacks at every start/end boundary, plus the peak and the time-weighted
// average. The error is non-nil for an empty workload.
func ConcurrentLoad(s *dataset.Store) ([]LoadPoint, LoadStats, error) {
	attacks := s.Attacks()
	if len(attacks) == 0 {
		return nil, LoadStats{}, fmt.Errorf("core: empty workload")
	}
	type boundary struct {
		t     time.Time
		delta int
	}
	events := make([]boundary, 0, 2*len(attacks))
	for _, a := range attacks {
		events = append(events, boundary{t: a.Start, delta: 1})
		events = append(events, boundary{t: a.End, delta: -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if !events[i].t.Equal(events[j].t) {
			return events[i].t.Before(events[j].t)
		}
		// Ends before starts at the same instant, so zero-duration attacks
		// do not inflate the concurrent count.
		return events[i].delta < events[j].delta
	})

	var (
		pts       []LoadPoint
		active    int
		st        LoadStats
		prevT     time.Time
		prevSet   bool
		weightSum float64
		timeSum   float64
	)
	for i := 0; i < len(events); {
		t := events[i].t
		if prevSet {
			dt := t.Sub(prevT).Seconds()
			weightSum += float64(active) * dt
			timeSum += dt
		}
		for i < len(events) && events[i].t.Equal(t) {
			active += events[i].delta
			i++
		}
		pts = append(pts, LoadPoint{Time: t, Active: active})
		if active > st.Peak {
			st.Peak = active
			st.PeakTime = t
		}
		prevT, prevSet = t, true
	}
	if timeSum > 0 {
		st.TimeWeightedMean = weightSum / timeSum
	}
	return pts, st, nil
}

// LoadStats summarizes the concurrent-load sweep.
type LoadStats struct {
	// Peak is the maximum number of simultaneously active attacks.
	Peak int
	// PeakTime is when the peak was reached.
	PeakTime time.Time
	// TimeWeightedMean is the average number of active attacks over the
	// whole window (the paper reports 243 simultaneous attacks on
	// average).
	TimeWeightedMean float64
}
