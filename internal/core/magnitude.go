package core

import (
	"fmt"
	"sort"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/stats"
)

// The paper uses the number of source IPs as the attack-magnitude measure
// (§III-B: bots do not spoof, so IP counts are meaningful). This file
// characterizes magnitudes per family and the workload's concurrent attack
// load over time — the "on average, there was 243 simultaneous verified
// DDoS attacks" observation of §II-B.

// Magnitudes returns every attack's magnitude in start-time order.
func Magnitudes(s *dataset.Store) []float64 {
	n := s.AttackRows()
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(s.AttackAt(i).Magnitude()))
	}
	return out
}

// FamilyMagnitudes returns one family's magnitudes in start-time order.
func FamilyMagnitudes(s *dataset.Store, f dataset.Family) []float64 {
	rows := s.RowsByFamily(f)
	out := make([]float64, 0, len(rows))
	for _, row := range rows {
		out = append(out, float64(s.AttackAt(int(row)).Magnitude()))
	}
	return out
}

// MagnitudeProfile summarizes one family's attack strength.
type MagnitudeProfile struct {
	Family dataset.Family

	stats.Summary
	// DurationCorrelation is the Pearson correlation between an attack's
	// magnitude and its duration; near zero in the paper's data (strength
	// and persistence are independent levers).
	DurationCorrelation float64
}

// ProfileMagnitudes builds a family's magnitude profile. The error is
// non-nil for a family without attacks.
func ProfileMagnitudes(s *dataset.Store, f dataset.Family) (MagnitudeProfile, error) {
	rows := s.RowsByFamily(f)
	if len(rows) == 0 {
		return MagnitudeProfile{}, fmt.Errorf("core: family %s has no attacks", f)
	}
	mags := make([]float64, len(rows))
	durs := make([]float64, len(rows))
	for i, row := range rows {
		v := s.AttackAt(int(row))
		mags[i] = float64(v.Magnitude())
		durs[i] = v.Duration().Seconds()
	}
	prof := MagnitudeProfile{Family: f, Summary: stats.Summarize(mags)}
	if corr, err := stats.PearsonCorrelation(mags, durs); err == nil {
		prof.DurationCorrelation = corr
	}
	return prof, nil
}

// LoadPoint is one step of the concurrent-attack load series: how many
// attacks are in progress just after Time.
type LoadPoint struct {
	Time   time.Time
	Active int
}

// ConcurrentLoad sweeps the workload and returns the number of in-progress
// attacks at every start/end boundary, plus the peak and the time-weighted
// average. The error is non-nil for an empty workload.
func ConcurrentLoad(s *dataset.Store) ([]LoadPoint, LoadStats, error) {
	n := s.AttackRows()
	if n == 0 {
		return nil, LoadStats{}, fmt.Errorf("core: empty workload")
	}
	type boundary struct {
		t     time.Time
		delta int
	}
	events := make([]boundary, 0, 2*n)
	for i := 0; i < n; i++ {
		v := s.AttackAt(i)
		events = append(events, boundary{t: v.Start(), delta: 1})
		events = append(events, boundary{t: v.End(), delta: -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if !events[i].t.Equal(events[j].t) {
			return events[i].t.Before(events[j].t)
		}
		// Ends before starts at the same instant, so zero-duration attacks
		// do not inflate the concurrent count.
		return events[i].delta < events[j].delta
	})

	var (
		pts       []LoadPoint
		active    int
		st        LoadStats
		prevT     time.Time
		prevSet   bool
		weightSum float64
		timeSum   float64
	)
	for i := 0; i < len(events); {
		t := events[i].t
		if prevSet {
			dt := t.Sub(prevT).Seconds()
			weightSum += float64(active) * dt
			timeSum += dt
		}
		for i < len(events) && events[i].t.Equal(t) {
			active += events[i].delta
			i++
		}
		pts = append(pts, LoadPoint{Time: t, Active: active})
		if active > st.Peak {
			st.Peak = active
			st.PeakTime = t
		}
		prevT, prevSet = t, true
	}
	if timeSum > 0 {
		st.TimeWeightedMean = weightSum / timeSum
	}
	return pts, st, nil
}

// LoadStats summarizes the concurrent-load sweep.
type LoadStats struct {
	// Peak is the maximum number of simultaneously active attacks.
	Peak int
	// PeakTime is when the peak was reached.
	PeakTime time.Time
	// TimeWeightedMean is the average number of active attacks over the
	// whole window (the paper reports 243 simultaneous attacks on
	// average).
	TimeWeightedMean float64
}
