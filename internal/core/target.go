package core

import (
	"sort"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/geo"
)

// CountryCount is one (country, attacks) row.
type CountryCount struct {
	CC    string
	Count int
}

// TargetCountryProfile is one family's row group in Table V.
type TargetCountryProfile struct {
	Family dataset.Family
	// Countries is the number of distinct victim countries.
	Countries int
	// Top lists the most-attacked countries, descending.
	Top []CountryCount
}

// TargetCountries computes the Table V profile for one family; topN caps
// the Top list (the paper shows 5).
func TargetCountries(s *dataset.Store, f dataset.Family, topN int) TargetCountryProfile {
	counts := make(map[string]int)
	for _, row := range s.RowsByFamily(f) {
		counts[s.AttackAt(int(row)).TargetCountry()]++
	}
	out := TargetCountryProfile{Family: f, Countries: len(counts)}
	for cc, n := range counts {
		out.Top = append(out.Top, CountryCount{CC: cc, Count: n})
	}
	sort.Slice(out.Top, func(i, j int) bool {
		if out.Top[i].Count != out.Top[j].Count {
			return out.Top[i].Count > out.Top[j].Count
		}
		return out.Top[i].CC < out.Top[j].CC
	})
	if topN > 0 && len(out.Top) > topN {
		out.Top = out.Top[:topN]
	}
	return out
}

// GlobalTargetCountries ranks victim countries across all families (the
// paper: USA 13,738, Russia 11,451, Germany 5,048, Ukraine 4,078,
// Netherlands 2,816).
func GlobalTargetCountries(s *dataset.Store, topN int) []CountryCount {
	counts := make(map[string]int)
	for i, n := 0, s.AttackRows(); i < n; i++ {
		counts[s.AttackAt(i).TargetCountry()]++
	}
	out := make([]CountryCount, 0, len(counts))
	for cc, n := range counts {
		out = append(out, CountryCount{CC: cc, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].CC < out[j].CC
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// OrgHotspot is one organization-level mark on the Fig 14 map: an attacked
// organization, its home coordinates, and its attack count.
type OrgHotspot struct {
	Org     string
	CC      string
	City    string
	Point   geo.LatLon
	Attacks int
}

// OrgHotspots computes the organization-level target analysis of Fig 14
// for one family inside a time window (the paper shows Pandora during
// February 2013). A zero from/to means the whole workload.
func OrgHotspots(s *dataset.Store, f dataset.Family, from, to time.Time) []OrgHotspot {
	type key struct {
		org string
		cc  string
	}
	agg := make(map[key]*OrgHotspot)
	for _, row := range s.RowsByFamily(f) {
		v := s.AttackAt(int(row))
		if !from.IsZero() && v.Start().Before(from) {
			continue
		}
		if !to.IsZero() && !v.Start().Before(to) {
			continue
		}
		k := key{org: v.TargetOrg(), cc: v.TargetCountry()}
		h := agg[k]
		if h == nil {
			h = &OrgHotspot{
				Org:   v.TargetOrg(),
				CC:    v.TargetCountry(),
				City:  v.TargetCity(),
				Point: geo.LatLon{Lat: v.TargetLat(), Lon: v.TargetLon()},
			}
			agg[k] = h
		}
		h.Attacks++
	}
	out := make([]OrgHotspot, 0, len(agg))
	for _, h := range agg {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attacks != out[j].Attacks {
			return out[i].Attacks > out[j].Attacks
		}
		if out[i].Org != out[j].Org {
			return out[i].Org < out[j].Org
		}
		return out[i].CC < out[j].CC
	})
	return out
}

// OrgBreadth counts distinct attacked organizations per family — the
// paper notes Dirtjumper attacks more organizations than any other family.
func OrgBreadth(s *dataset.Store) map[dataset.Family]int {
	out := make(map[dataset.Family]int)
	for _, f := range s.Families() {
		orgs := make(map[string]bool)
		for _, row := range s.RowsByFamily(f) {
			orgs[s.AttackAt(int(row)).TargetOrg()] = true
		}
		out[f] = len(orgs)
	}
	return out
}
