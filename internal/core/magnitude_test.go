package core

import (
	"net/netip"
	"testing"
	"time"

	"botscope/internal/dataset"
)

// withMagnitude sets an attack's source count.
func withMagnitude(a *dataset.Attack, n int) *dataset.Attack {
	ips := make([]netip.Addr, n)
	base := netip.MustParseAddr("9.1.0.0").As4()
	for i := range ips {
		ips[i] = netip.AddrFrom4([4]byte{base[0], base[1], byte(i >> 8), byte(i)})
	}
	a.BotIPs = ips
	return a
}

func TestMagnitudes(t *testing.T) {
	attacks := []*dataset.Attack{
		withMagnitude(mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour), 10),
		withMagnitude(mkAttack(2, dataset.Pandora, 2, "5.5.5.2", t0.Add(time.Hour), time.Hour), 20),
	}
	s := mustStore(t, attacks)
	mags := Magnitudes(s)
	if len(mags) != 2 || mags[0] != 10 || mags[1] != 20 {
		t.Errorf("magnitudes = %v", mags)
	}
	fm := FamilyMagnitudes(s, dataset.Pandora)
	if len(fm) != 1 || fm[0] != 20 {
		t.Errorf("pandora magnitudes = %v", fm)
	}
}

func TestProfileMagnitudes(t *testing.T) {
	// Magnitude strictly grows with duration -> correlation 1.
	attacks := []*dataset.Attack{
		withMagnitude(mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, 1*time.Hour), 10),
		withMagnitude(mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.Add(time.Hour), 2*time.Hour), 20),
		withMagnitude(mkAttack(3, dataset.Dirtjumper, 1, "5.5.5.3", t0.Add(2*time.Hour), 3*time.Hour), 30),
	}
	s := mustStore(t, attacks)
	prof, err := ProfileMagnitudes(s, dataset.Dirtjumper)
	if err != nil {
		t.Fatal(err)
	}
	if prof.N != 3 || prof.Mean != 20 {
		t.Errorf("profile = %+v", prof)
	}
	if prof.DurationCorrelation < 0.999 {
		t.Errorf("correlation = %v, want 1", prof.DurationCorrelation)
	}
	if _, err := ProfileMagnitudes(s, dataset.Optima); err == nil {
		t.Error("family without attacks succeeded")
	}
}

func TestConcurrentLoad(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, 2*time.Hour),
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.Add(time.Hour), 2*time.Hour), // overlaps #1
		mkAttack(3, dataset.Pandora, 2, "5.5.5.3", t0.Add(5*time.Hour), time.Hour),    // isolated
	}
	s := mustStore(t, attacks)
	pts, st, err := ConcurrentLoad(s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Peak != 2 {
		t.Errorf("peak = %d, want 2", st.Peak)
	}
	if !st.PeakTime.Equal(t0.Add(time.Hour)) {
		t.Errorf("peak time = %v, want %v", st.PeakTime, t0.Add(time.Hour))
	}
	// Active counts along the sweep must start at 1, hit 2, and end at 0.
	if pts[0].Active != 1 {
		t.Errorf("first point active = %d, want 1", pts[0].Active)
	}
	if pts[len(pts)-1].Active != 0 {
		t.Errorf("last point active = %d, want 0", pts[len(pts)-1].Active)
	}
	// Time-weighted mean over the 6-hour span: (1h*1 + 1h*2 + 1h*1 + 2h*0 + 1h*1)/6h = 5/6.
	if st.TimeWeightedMean < 0.8 || st.TimeWeightedMean > 0.87 {
		t.Errorf("time-weighted mean = %v, want 5/6", st.TimeWeightedMean)
	}
}

func TestConcurrentLoadZeroDuration(t *testing.T) {
	a := mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, 0)
	s := mustStore(t, []*dataset.Attack{a})
	_, st, err := ConcurrentLoad(s)
	if err != nil {
		t.Fatal(err)
	}
	// A zero-duration attack ends the instant it starts: peak stays 0.
	if st.Peak != 0 {
		t.Errorf("peak = %d, want 0 for zero-duration attack", st.Peak)
	}
}

func TestConcurrentLoadEmpty(t *testing.T) {
	s := mustStore(t, nil)
	if _, _, err := ConcurrentLoad(s); err == nil {
		t.Error("empty workload succeeded")
	}
}

func TestConcurrentLoadOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)
	pts, st, err := ConcurrentLoad(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || st.Peak == 0 {
		t.Fatalf("load sweep empty: %+v", st)
	}
	// The paper reports ~243 simultaneous attacks on average at full
	// scale; the 5% workload should sit around 5% of that, loosely.
	if st.TimeWeightedMean < 1 || st.TimeWeightedMean > 60 {
		t.Errorf("mean concurrent load = %v, want O(12) at 5%% scale", st.TimeWeightedMean)
	}
	if st.Peak < int(st.TimeWeightedMean) {
		t.Errorf("peak %d below mean %v", st.Peak, st.TimeWeightedMean)
	}
}
