package core

import (
	"testing"
	"time"

	"botscope/internal/dataset"
)

func TestDetectCollaborationsIntra(t *testing.T) {
	// Two dirtjumper botnets hit the same target simultaneously with
	// matched durations: one intra-family collaboration.
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 2, "5.5.5.1", t0.Add(10*time.Second), time.Hour+10*time.Minute),
	}
	s := mustStore(t, attacks)
	collabs := DetectCollaborations(s)
	if len(collabs) != 1 {
		t.Fatalf("collaborations = %d, want 1", len(collabs))
	}
	c := collabs[0]
	if !c.Intra() || c.Families[0] != dataset.Dirtjumper {
		t.Errorf("collab = %+v, want intra dirtjumper", c)
	}
	if c.Botnets() != 2 {
		t.Errorf("botnets = %d, want 2", c.Botnets())
	}
}

func TestDetectCollaborationsRejectsSameBotnet(t *testing.T) {
	// Same botnet ID twice: not a collaboration.
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.1", t0.Add(5*time.Second), time.Hour),
	}
	s := mustStore(t, attacks)
	if got := DetectCollaborations(s); len(got) != 0 {
		t.Errorf("collaborations = %d, want 0 (same botnet)", len(got))
	}
}

func TestDetectCollaborationsRejectsDurationMismatch(t *testing.T) {
	// Same start, same target, but durations differ by > 30 min.
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Pandora, 2, "5.5.5.1", t0.Add(5*time.Second), 3*time.Hour),
	}
	s := mustStore(t, attacks)
	if got := DetectCollaborations(s); len(got) != 0 {
		t.Errorf("collaborations = %d, want 0 (duration mismatch)", len(got))
	}
}

func TestDetectCollaborationsRejectsLateStart(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Pandora, 2, "5.5.5.1", t0.Add(5*time.Minute), time.Hour),
	}
	s := mustStore(t, attacks)
	if got := DetectCollaborations(s); len(got) != 0 {
		t.Errorf("collaborations = %d, want 0 (starts 5 min apart)", len(got))
	}
}

func TestDetectCollaborationsInterFamily(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, 2*time.Hour),
		mkAttack(2, dataset.Pandora, 2, "5.5.5.1", t0, 2*time.Hour+20*time.Minute),
	}
	s := mustStore(t, attacks)
	collabs := DetectCollaborations(s)
	if len(collabs) != 1 {
		t.Fatalf("collaborations = %d, want 1", len(collabs))
	}
	if collabs[0].Intra() {
		t.Error("inter-family collaboration classified as intra")
	}
}

func TestQualifyCollaborationPicksCompatibleSubset(t *testing.T) {
	// Three attacks: two with matched durations, one far off. The
	// detector keeps the compatible pair.
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 2, "5.5.5.1", t0.Add(5*time.Second), time.Hour+5*time.Minute),
		mkAttack(3, dataset.Dirtjumper, 3, "5.5.5.1", t0.Add(10*time.Second), 10*time.Hour),
	}
	s := mustStore(t, attacks)
	collabs := DetectCollaborations(s)
	if len(collabs) != 1 {
		t.Fatalf("collaborations = %d, want 1", len(collabs))
	}
	if got := len(collabs[0].Attacks); got != 2 {
		t.Errorf("collab size = %d, want 2 (outlier dropped)", got)
	}
}

func TestAnalyzeCollaborations(t *testing.T) {
	attacks := []*dataset.Attack{
		// Intra dirtjumper.
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 2, "5.5.5.1", t0, time.Hour),
		// Inter dirtjumper+pandora.
		mkAttack(3, dataset.Dirtjumper, 1, "5.5.5.2", t0.Add(time.Hour), time.Hour),
		mkAttack(4, dataset.Pandora, 3, "5.5.5.2", t0.Add(time.Hour), time.Hour),
	}
	s := mustStore(t, attacks)
	st := AnalyzeCollaborations(s)
	if st.TotalIntra != 1 || st.TotalInter != 1 {
		t.Fatalf("intra/inter = %d/%d, want 1/1", st.TotalIntra, st.TotalInter)
	}
	if st.Intra[dataset.Dirtjumper] != 1 {
		t.Errorf("Intra = %v", st.Intra)
	}
	if st.Inter[dataset.Dirtjumper] != 1 || st.Inter[dataset.Pandora] != 1 {
		t.Errorf("Inter = %v", st.Inter)
	}
	if st.PairCounts["dirtjumper+pandora"] != 1 {
		t.Errorf("PairCounts = %v", st.PairCounts)
	}
	if st.MeanBotnets != 2 {
		t.Errorf("MeanBotnets = %v, want 2", st.MeanBotnets)
	}
}

func TestAnalyzePair(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, 2*time.Hour),
		mkAttack(2, dataset.Pandora, 2, "5.5.5.1", t0, 2*time.Hour+15*time.Minute),
		mkAttack(3, dataset.Dirtjumper, 1, "5.5.5.2", t0.AddDate(0, 0, 7), time.Hour),
		mkAttack(4, dataset.Pandora, 2, "5.5.5.2", t0.AddDate(0, 0, 7), time.Hour+10*time.Minute),
	}
	attacks[2].TargetCountry = "RU"
	attacks[3].TargetCountry = "RU"
	s := mustStore(t, attacks)
	sum := AnalyzePair(s, dataset.Dirtjumper, dataset.Pandora)
	if sum.Count != 2 {
		t.Fatalf("pair collaborations = %d, want 2", sum.Count)
	}
	if sum.UniqueTargets != 2 || sum.Countries != 2 {
		t.Errorf("targets/countries = %d/%d, want 2/2", sum.UniqueTargets, sum.Countries)
	}
	if sum.Span != 7*24*time.Hour {
		t.Errorf("span = %v, want 7 days", sum.Span)
	}
	if sum.MeanDurationA <= 0 || sum.MeanDurationB <= sum.MeanDurationA {
		t.Errorf("durations A=%v B=%v, want pandora longer", sum.MeanDurationA, sum.MeanDurationB)
	}
}

func TestCollabOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)
	st := AnalyzeCollaborations(s)
	if st.TotalIntra == 0 {
		t.Fatal("no intra-family collaborations detected")
	}
	if st.TotalInter == 0 {
		t.Fatal("no inter-family collaborations detected")
	}
	// Dirtjumper leads intra-family collaboration (Table VI: 756).
	best, bestN := dataset.Family(""), 0
	for f, n := range st.Intra {
		if n > bestN {
			best, bestN = f, n
		}
	}
	if best != dataset.Dirtjumper {
		t.Errorf("top intra-family collaborator = %s (%d), want dirtjumper; table: %v", best, bestN, st.Intra)
	}
	// Dirtjumper+Pandora dominates inter-family pairs.
	bestPair, bestPairN := "", 0
	for p, n := range st.PairCounts {
		if n > bestPairN {
			bestPair, bestPairN = p, n
		}
	}
	if bestPair != "dirtjumper+pandora" {
		t.Errorf("top pair = %s (%d), want dirtjumper+pandora; pairs: %v", bestPair, bestPairN, st.PairCounts)
	}
	// Mean botnets per collaboration ~2.19 (Fig 15).
	if st.MeanBotnets < 2 || st.MeanBotnets > 2.6 {
		t.Errorf("mean botnets per collaboration = %v, want about 2.19", st.MeanBotnets)
	}

	pair := AnalyzePair(s, dataset.Dirtjumper, dataset.Pandora)
	if pair.Count == 0 {
		t.Fatal("no dirtjumper-pandora pair events")
	}
	if pair.UniqueTargets == 0 || pair.Organizations == 0 || pair.ASNs == 0 {
		t.Errorf("pair summary incomplete: %+v", pair)
	}
}

// TestDetectCollaborationsParallelMatchesSequential pins the sharding
// invariant: detection over disjoint target shards merged in canonical
// order must equal the sequential scan exactly, for any worker count.
func TestDetectCollaborationsParallelMatchesSequential(t *testing.T) {
	s := synthWorkload(t)
	seq := DetectCollaborationsWindowWorkers(s, SimultaneousThreshold, CollabDurationWindow, 1)
	if len(seq) == 0 {
		t.Fatal("sequential detection found no collaborations; comparison is vacuous")
	}
	for _, workers := range []int{0, 2, 3, 16} {
		par := DetectCollaborationsWindowWorkers(s, SimultaneousThreshold, CollabDurationWindow, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d collaborations, sequential found %d", workers, len(par), len(seq))
		}
		for i := range seq {
			a, b := seq[i], par[i]
			if a.Target != b.Target || !a.Start.Equal(b.Start) || len(a.Attacks) != len(b.Attacks) {
				t.Fatalf("workers=%d: collaboration %d differs: %s@%v (%d attacks) vs %s@%v (%d attacks)",
					workers, i, b.Target, b.Start, len(b.Attacks), a.Target, a.Start, len(a.Attacks))
			}
			for j := range a.Attacks {
				if a.Attacks[j].ID != b.Attacks[j].ID {
					t.Fatalf("workers=%d: collaboration %d attack %d: ID %d vs %d",
						workers, i, j, b.Attacks[j].ID, a.Attacks[j].ID)
				}
			}
		}
	}
}
