package core

import (
	"fmt"
	"sync"

	"botscope/internal/dataset"
	"botscope/internal/par"
	"botscope/internal/stats"
	"botscope/internal/timeseries"
)

// DispersionIndex memoizes per-family dispersion series over one store.
// Computing a family's series walks every attack's bot formation, and the
// figures, Table IV prediction, and the transfer matrix all re-derive the
// same series — roughly thirty recomputations per full report before this
// index existed. The index computes each family's series at most once and
// serves the shared immutable slice afterwards.
//
// It is safe for concurrent use: the family map is guarded by mu, while
// each entry carries its own sync.Once so a slow series computation never
// holds the map lock and two families can be computed concurrently.
type DispersionIndex struct {
	store *dataset.Store

	mu    sync.Mutex
	byFam map[dataset.Family]*dispEntry // guarded by mu
}

type dispEntry struct {
	once   sync.Once
	series []DispersionPoint // written once inside once.Do; immutable after
}

// NewDispersionIndex creates an empty index over s. Series are computed
// lazily on first access; use Precompute to fill the index eagerly.
func NewDispersionIndex(s *dataset.Store) *DispersionIndex {
	return &DispersionIndex{
		store: s,
		byFam: make(map[dataset.Family]*dispEntry),
	}
}

var (
	dispMemoMu    sync.Mutex
	dispMemoStore *dataset.Store   // guarded by dispMemoMu
	dispMemoIx    *DispersionIndex // guarded by dispMemoMu
)

// IndexFor returns a memoized DispersionIndex for s, so package-level
// entry points that don't thread a Workloads value (ActiveDispersion-
// Families, TransferPredict) still share series across calls. Exactly one
// store is cached — the one most recently asked about — which covers the
// realistic access pattern (one store per process) with a bounded
// footprint; switching stores just drops the previous index.
func IndexFor(s *dataset.Store) *DispersionIndex {
	dispMemoMu.Lock()
	defer dispMemoMu.Unlock()
	if dispMemoStore != s {
		dispMemoStore = s
		dispMemoIx = NewDispersionIndex(s)
	}
	return dispMemoIx
}

// Store returns the underlying store.
func (ix *DispersionIndex) Store() *dataset.Store { return ix.store }

// Series returns the family's chronological dispersion series, computing
// it on first call. The returned slice is shared and must not be modified.
//
//botscope:shared
func (ix *DispersionIndex) Series(f dataset.Family) []DispersionPoint {
	ix.mu.Lock()
	e, ok := ix.byFam[f]
	if !ok {
		e = &dispEntry{}
		ix.byFam[f] = e
	}
	ix.mu.Unlock()
	e.once.Do(func() {
		e.series = DispersionSeries(ix.store, f)
	})
	return e.series
}

// Precompute fills the index for every family in the store, sharded by
// family across workers (0 = all cores). Calling it is optional — it only
// moves the work earlier and spreads it over cores.
func (ix *DispersionIndex) Precompute(workers int) {
	fams := ix.store.Families()
	par.Map(workers, len(fams), func(i int) struct{} {
		ix.Series(fams[i])
		return struct{}{}
	})
}

// Profile is ProfileDispersion served from the index.
func (ix *DispersionIndex) Profile(f dataset.Family) (DispersionProfile, error) {
	return profileFromSeries(f, ix.Series(f))
}

// CDF is DispersionCDF served from the index.
func (ix *DispersionIndex) CDF(f dataset.Family) (*stats.ECDF, error) {
	return cdfFromSeries(f, ix.Series(f))
}

// Histogram is DispersionHistogram served from the index.
func (ix *DispersionIndex) Histogram(f dataset.Family, bins int) (*stats.Histogram, error) {
	return histogramFromSeries(f, ix.Series(f), bins)
}

// ActiveFamilies is ActiveDispersionFamilies served from the index.
func (ix *DispersionIndex) ActiveFamilies(minPoints int) []dataset.Family {
	return activeFamiliesFrom(ix.store.Families(), ix.Series, minPoints)
}

// Predict is PredictDispersion served from the index.
func (ix *DispersionIndex) Predict(f dataset.Family, cfg PredictConfig) (*PredictionResult, error) {
	return PredictSeries(f, DispersionValues(ix.Series(f)), cfg)
}

// PredictAll is PredictAllFamilies served from the index, with the
// per-family fits sharded across workers (0 = all cores). Families are
// evaluated independently and results are kept in the canonical
// ActiveFamilies order, so the output matches the sequential loop.
func (ix *DispersionIndex) PredictAll(cfg PredictConfig, workers int) []*PredictionResult {
	fams := ix.ActiveFamilies(1)
	results := par.Map(workers, len(fams), func(i int) *PredictionResult {
		res, err := ix.Predict(fams[i], cfg)
		if err != nil {
			return nil
		}
		return res
	})
	out := make([]*PredictionResult, 0, len(results))
	for _, r := range results {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Transfer is TransferPredict served from the index.
func (ix *DispersionIndex) Transfer(source, target dataset.Family, order timeseries.Order, minSeries int) (*TransferResult, error) {
	src := DispersionValues(ix.Series(source))
	tgt := DispersionValues(ix.Series(target))
	return transferFromSeries(source, target, src, tgt, order, minSeries)
}

// TransferMatrix is the package-level TransferMatrix served from the
// index, with the ordered pairs sharded across workers (0 = all cores).
// Pairs are independent fits; results are kept in canonical pair order.
func (ix *DispersionIndex) TransferMatrix(families []dataset.Family, order timeseries.Order, minSeries int) []*TransferResult {
	return ix.TransferMatrixWorkers(families, order, minSeries, 0)
}

// TransferMatrixWorkers is TransferMatrix with an explicit worker count.
//
// An n-family matrix has n(n-1) ordered pairs but only 2n distinct ARIMA
// fits — the source-role model depends only on the source series and the
// native-role score only on the target series — so both are computed once
// per family (in parallel) and shared across every pair. Pair scoring
// reuses them and only runs the cheap transfer forecast.
func (ix *DispersionIndex) TransferMatrixWorkers(families []dataset.Family, order timeseries.Order, minSeries int, workers int) []*TransferResult {
	if minSeries <= 0 {
		minSeries = 60
	}
	vals := par.Map(workers, len(families), func(i int) []float64 {
		return DispersionValues(ix.Series(families[i]))
	})
	type famFit struct {
		srcModel  *timeseries.Model
		srcErr    error
		muTrain   float64
		nativeSim float64
		nativeErr error
	}
	fits := par.Map(workers, len(families), func(i int) *famFit {
		v := vals[i]
		if len(v) < minSeries {
			err := fmt.Errorf("core: %s has %d dispersion points, need %d", families[i], len(v), minSeries)
			return &famFit{srcErr: err, nativeErr: err}
		}
		f := &famFit{}
		f.srcModel, f.srcErr = timeseries.Fit(v, order)
		f.muTrain, f.nativeSim, f.nativeErr = nativeFit(families[i], v, order)
		return f
	})
	type pair struct{ src, tgt int }
	var pairs []pair
	for si := range families {
		for ti := range families {
			if si != ti {
				pairs = append(pairs, pair{si, ti})
			}
		}
	}
	results := par.Map(workers, len(pairs), func(i int) *TransferResult {
		src, tgt := fits[pairs[i].src], fits[pairs[i].tgt]
		if src.srcErr != nil || tgt.nativeErr != nil {
			return nil
		}
		res, err := transferScore(families[pairs[i].src], families[pairs[i].tgt],
			src.srcModel, vals[pairs[i].tgt], tgt.muTrain, tgt.nativeSim)
		if err != nil {
			return nil
		}
		return res
	})
	out := make([]*TransferResult, 0, len(results))
	for _, r := range results {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}
