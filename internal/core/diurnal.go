package core

import (
	"fmt"
	"math"

	"botscope/internal/dataset"
	"botscope/internal/par"
	"botscope/internal/stats"
)

// The paper observes (§III-A) that attack counts show none of the diurnal
// or weekly patterns of user-driven Internet activity — DDoS launches are
// event- and profit-driven. This file makes that claim testable: bucket
// attack starts by hour of day and day of week and score the concentration
// against a reference diurnal (web-traffic-like) profile.

// HourOfDayCounts buckets attack starts into 24 UTC hours. The scan is
// sharded over contiguous attack ranges; integer bucket sums are
// order-independent, so the result matches a sequential pass.
func HourOfDayCounts(s *dataset.Store) [24]int {
	n := s.AttackRows()
	var out [24]int
	for _, shard := range par.ChunkMap(0, n, func(lo, hi int) [24]int {
		var c [24]int
		for i := lo; i < hi; i++ {
			c[s.AttackAt(i).Start().Hour()]++
		}
		return c
	}) {
		for h, n := range shard {
			out[h] += n
		}
	}
	return out
}

// DayOfWeekCounts buckets attack starts into 7 weekdays (Sunday = 0),
// sharded the same way as HourOfDayCounts.
func DayOfWeekCounts(s *dataset.Store) [7]int {
	n := s.AttackRows()
	var out [7]int
	for _, shard := range par.ChunkMap(0, n, func(lo, hi int) [7]int {
		var c [7]int
		for i := lo; i < hi; i++ {
			c[int(s.AttackAt(i).Start().Weekday())]++
		}
		return c
	}) {
		for d, n := range shard {
			out[d] += n
		}
	}
	return out
}

// DiurnalAnalysis quantifies how day-shaped the attack timing is.
type DiurnalAnalysis struct {
	HourCounts    [24]int
	WeekdayCounts [7]int
	// HourScore/WeekdayScore are concentration scores in [0, 1]
	// (0 = perfectly flat). User-driven traffic lands far above DDoS
	// launch processes.
	HourScore    float64
	WeekdayScore float64
	// ReferenceHourScore is the score of a canonical diurnal web-traffic
	// profile with the same total volume, for comparison.
	ReferenceHourScore float64
	// Diurnal reports whether the workload looks day-driven: its hourly
	// concentration reaches at least half the reference profile's.
	Diurnal bool
}

// AnalyzeDiurnal computes the timing-pattern analysis. The error is
// non-nil for an empty workload.
func AnalyzeDiurnal(s *dataset.Store) (DiurnalAnalysis, error) {
	if s.NumAttacks() == 0 {
		return DiurnalAnalysis{}, fmt.Errorf("core: empty workload")
	}
	out := DiurnalAnalysis{
		HourCounts:    HourOfDayCounts(s),
		WeekdayCounts: DayOfWeekCounts(s),
	}
	var err error
	out.HourScore, err = stats.UniformityScore(out.HourCounts[:])
	if err != nil {
		return DiurnalAnalysis{}, err
	}
	out.WeekdayScore, err = stats.UniformityScore(out.WeekdayCounts[:])
	if err != nil {
		return DiurnalAnalysis{}, err
	}
	ref := ReferenceDiurnalCounts(s.NumAttacks())
	out.ReferenceHourScore, err = stats.UniformityScore(ref[:])
	if err != nil {
		return DiurnalAnalysis{}, err
	}
	out.Diurnal = out.HourScore >= out.ReferenceHourScore/2
	return out, nil
}

// ReferenceDiurnalCounts builds a canonical user-driven hourly profile
// (sinusoidal day shape peaking mid-day, troughing at night, peak/trough
// ratio ~4x) carrying the given total volume. It is the comparison point
// for the paper's "no diurnal pattern" claim.
func ReferenceDiurnalCounts(total int) [24]int {
	var weights [24]float64
	var sum float64
	for h := 0; h < 24; h++ {
		// Peak at 14:00, trough at 02:00.
		w := 1 + 0.6*math.Sin(2*math.Pi*(float64(h)-8)/24)
		weights[h] = w
		sum += w
	}
	var out [24]int
	assigned := 0
	for h := 0; h < 24; h++ {
		n := int(float64(total) * weights[h] / sum)
		out[h] = n
		assigned += n
	}
	// Distribute rounding leftovers onto the peak hour.
	out[14] += total - assigned
	return out
}
