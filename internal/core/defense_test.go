package core

import (
	"net/netip"
	"testing"
	"time"

	"botscope/internal/dataset"
)

func TestBuildBlacklistRanking(t *testing.T) {
	heavy := netip.MustParseAddr("9.0.0.1")  // in 3 attacks, 2 families
	medium := netip.MustParseAddr("9.0.0.2") // in 2 attacks
	light := netip.MustParseAddr("9.0.0.3")  // in 1 attack

	a1 := mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour)
	a1.BotIPs = []netip.Addr{heavy, medium}
	a2 := mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.Add(time.Hour), time.Hour)
	a2.BotIPs = []netip.Addr{heavy, medium, light}
	a3 := mkAttack(3, dataset.Pandora, 2, "5.5.5.3", t0.Add(2*time.Hour), time.Hour)
	a3.BotIPs = []netip.Addr{heavy}

	s := mustStore(t, []*dataset.Attack{a1, a2, a3})
	bl, err := BuildBlacklist(s, time.Time{}, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() != 3 {
		t.Fatalf("blacklist size = %d, want 3", bl.Len())
	}
	entries := bl.Entries()
	if entries[0].IP != heavy || entries[0].Occurrences != 3 || entries[0].Families != 2 {
		t.Errorf("top entry = %+v, want heavy bot with 3 occurrences / 2 families", entries[0])
	}
	if entries[1].IP != medium || entries[2].IP != light {
		t.Errorf("ranking wrong: %+v", entries)
	}
	if !bl.Contains(heavy) || bl.Contains(netip.MustParseAddr("1.1.1.1")) {
		t.Error("membership checks broken")
	}

	capped, err := BuildBlacklist(s, time.Time{}, time.Time{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Len() != 1 || capped.Entries()[0].IP != heavy {
		t.Errorf("capped blacklist = %+v", capped.Entries())
	}
}

func TestBuildBlacklistWindow(t *testing.T) {
	a1 := mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour)
	a2 := mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.AddDate(0, 0, 5), time.Hour)
	a2.BotIPs = []netip.Addr{netip.MustParseAddr("9.0.0.9")}
	s := mustStore(t, []*dataset.Attack{a1, a2})

	bl, err := BuildBlacklist(s, time.Time{}, t0.AddDate(0, 0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() != 1 || bl.Contains(netip.MustParseAddr("9.0.0.9")) {
		t.Errorf("window not respected: %+v", bl.Entries())
	}

	if _, err := BuildBlacklist(s, t0.AddDate(1, 0, 0), time.Time{}, 0); err == nil {
		t.Error("empty training window succeeded")
	}
	empty := mustStore(t, nil)
	if _, err := BuildBlacklist(empty, time.Time{}, time.Time{}, 0); err == nil {
		t.Error("empty workload succeeded")
	}
}

func TestEvaluateBlacklist(t *testing.T) {
	recidivist := netip.MustParseAddr("9.0.0.1")
	fresh := netip.MustParseAddr("9.0.0.2")

	train := mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour)
	train.BotIPs = []netip.Addr{recidivist}
	// Future attack reuses the recidivist plus a fresh bot.
	future := mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.AddDate(0, 0, 10), time.Hour)
	future.BotIPs = []netip.Addr{recidivist, fresh}

	s := mustStore(t, []*dataset.Attack{train, future})
	split := t0.AddDate(0, 0, 5)
	bl, err := BuildBlacklist(s, time.Time{}, split, 0)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluateBlacklist(s, bl, split, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Attacks != 1 {
		t.Fatalf("evaluated attacks = %d, want 1", ev.Attacks)
	}
	if ev.BotCoverage != 0.5 {
		t.Errorf("coverage = %v, want 0.5", ev.BotCoverage)
	}
	if ev.AttacksBlunted != 1 { // 50% of sources blocked counts as blunted
		t.Errorf("blunted = %v, want 1", ev.AttacksBlunted)
	}

	if _, err := EvaluateBlacklist(s, bl, t0.AddDate(2, 0, 0), time.Time{}); err == nil {
		t.Error("empty evaluation window succeeded")
	}
	if _, err := EvaluateBlacklist(s, &Blacklist{}, split, time.Time{}); err == nil {
		t.Error("empty blacklist succeeded")
	}
}

func TestPlanMitigation(t *testing.T) {
	// Target hit every 2 hours, five times.
	var attacks []*dataset.Attack
	for i := 0; i < 5; i++ {
		attacks = append(attacks, mkAttack(dataset.DDoSID(i+1), dataset.Dirtjumper, 1,
			"5.5.5.1", t0.Add(time.Duration(i)*2*time.Hour), 30*time.Minute))
	}
	// A one-off target that must not appear.
	attacks = append(attacks, mkAttack(99, dataset.Pandora, 2, "5.5.5.9", t0, time.Hour))
	s := mustStore(t, attacks)

	plans := PlanMitigation(s, 3)
	if len(plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(plans))
	}
	p := plans[0]
	if p.Target != "5.5.5.1" || p.HistoryGaps != 4 {
		t.Errorf("plan = %+v", p)
	}
	lastStart := t0.Add(8 * time.Hour)
	if !p.ExpectedNext.Equal(lastStart.Add(2 * time.Hour)) {
		t.Errorf("ExpectedNext = %v, want last start + median gap (2h)", p.ExpectedNext)
	}
	if !p.ArmFrom.Before(p.ArmUntil) {
		t.Errorf("arm window inverted: %v .. %v", p.ArmFrom, p.ArmUntil)
	}
	if p.ArmFrom.After(p.ExpectedNext) {
		t.Errorf("arm window starts after the expected attack")
	}
}

func TestDefenseOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)
	first, last, _ := s.TimeBounds()
	split := first.Add(last.Sub(first) / 2)

	bl, err := BuildBlacklist(s, time.Time{}, split, 0)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluateBlacklist(s, bl, split, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	// Bots persist across campaigns, so a history blacklist must block a
	// substantial share of future attack sources.
	if ev.BotCoverage < 0.2 {
		t.Errorf("future bot coverage = %v, want >= 0.2", ev.BotCoverage)
	}
	// A top-1000 blacklist covers less than the full one but is not empty.
	small, err := BuildBlacklist(s, time.Time{}, split, 1000)
	if err != nil {
		t.Fatal(err)
	}
	evSmall, err := EvaluateBlacklist(s, small, split, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if evSmall.BotCoverage <= 0 || evSmall.BotCoverage > ev.BotCoverage+1e-9 {
		t.Errorf("capped coverage %v vs full %v inconsistent", evSmall.BotCoverage, ev.BotCoverage)
	}

	plans := PlanMitigation(s, 5)
	if len(plans) == 0 {
		t.Fatal("no mitigation plans for repeat targets")
	}
	for _, p := range plans[:min(5, len(plans))] {
		if p.ArmFrom.After(p.ArmUntil) {
			t.Errorf("plan window inverted for %s", p.Target)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestBlacklistTruncate pins Truncate against rebuilding with a cap: the
// entries are already ranked, so the truncated list must equal a fresh
// BuildBlacklist with the same maxSize.
func TestBlacklistTruncate(t *testing.T) {
	s := synthWorkload(t)
	full, err := BuildBlacklist(s, time.Time{}, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{1, 10, full.Len() / 2, full.Len(), full.Len() + 1, 0, -1} {
		rebuilt, err := BuildBlacklist(s, time.Time{}, time.Time{}, cap)
		if err != nil {
			t.Fatal(err)
		}
		got := full.Truncate(cap)
		if got.Len() != rebuilt.Len() {
			t.Fatalf("cap %d: Truncate len %d, rebuild len %d", cap, got.Len(), rebuilt.Len())
		}
		for i, e := range got.Entries() {
			if e != rebuilt.Entries()[i] {
				t.Fatalf("cap %d: entry %d differs: %+v vs %+v", cap, i, e, rebuilt.Entries()[i])
			}
			if !got.Contains(e.IP) {
				t.Fatalf("cap %d: member set missing ranked entry %s", cap, e.IP)
			}
		}
	}
	if full.Truncate(0) != full || full.Truncate(full.Len()) != full {
		t.Error("no-op Truncate should return the receiver")
	}
}

// TestBlacklistTruncateClipsCapacity guards the aliasing fix: the truncated
// list shares the receiver's backing array, so its entry slice must have
// its capacity clipped — an append through the short view would otherwise
// overwrite the receiver's tail entries in place.
func TestBlacklistTruncateClipsCapacity(t *testing.T) {
	s := synthWorkload(t)
	full, err := BuildBlacklist(s, time.Time{}, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() < 2 {
		t.Skip("workload too small to truncate")
	}
	keep := full.Len() / 2
	short := full.Truncate(keep)
	if got := cap(short.Entries()); got != keep {
		t.Fatalf("Truncate(%d) entries cap = %d, want %d (capacity must be clipped)", keep, got, keep)
	}
	tail := full.Entries()[keep]
	_ = append(short.Entries(), BlacklistEntry{}) //botvet:ignore sharedslice test proves the clipped append reallocates
	if full.Entries()[keep] != tail {
		t.Fatalf("append through truncated view clobbered receiver entry %d", keep)
	}
}
