package core

import (
	"sort"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/stats"
)

// ConsecutiveMargin is the paper's multistage criterion (§V-B): the next
// attack starts within 60 seconds of the previous attack's end (including
// small overlaps).
const ConsecutiveMargin = 60 * time.Second

// Chain is one multistage attack: back-to-back strikes on one target.
type Chain struct {
	Target  string
	Family  dataset.Family
	Attacks []*dataset.Attack
	// Gaps are the start-minus-previous-end intervals in seconds (>= -60).
	Gaps []float64
}

// Length returns the number of attacks in the chain.
func (c *Chain) Length() int { return len(c.Attacks) }

// Duration returns first start to last end.
func (c *Chain) Duration() time.Duration {
	return c.Attacks[len(c.Attacks)-1].End.Sub(c.Attacks[0].Start)
}

// DetectChains finds multistage attacks: per target, consecutive attacks
// whose gap |start - previous end| stays within the margin. Only chains of
// at least minLen attacks are returned (the paper implies 2).
func DetectChains(s *dataset.Store, minLen int) []*Chain {
	if minLen < 2 {
		minLen = 2
	}
	var out []*Chain
	for _, tid := range s.TargetIDs() {
		target := s.TargetAddr(tid).String()
		var cur []int32
		var gaps []float64
		flush := func() {
			if len(cur) >= minLen {
				// Only qualifying chains materialize attack records; the
				// scan itself stays on the columns.
				attacks := make([]*dataset.Attack, len(cur))
				for k, row := range cur {
					attacks[k] = s.AttackRecordAt(int(row))
				}
				out = append(out, buildChain(target, attacks, gaps))
			}
			cur, gaps = nil, nil
		}
		for _, row := range s.TargetRows(tid) {
			if len(cur) == 0 {
				cur = []int32{row}
				continue
			}
			prevEnd := s.AttackAt(int(cur[len(cur)-1])).EndNano()
			gap := time.Duration(s.AttackAt(int(row)).StartNano() - prevEnd)
			if gap >= -ConsecutiveMargin && gap <= ConsecutiveMargin {
				cur = append(cur, row)
				gaps = append(gaps, gap.Seconds())
			} else {
				flush()
				cur = []int32{row}
			}
		}
		flush()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Attacks[0].Start.Equal(out[j].Attacks[0].Start) {
			return out[i].Attacks[0].Start.Before(out[j].Attacks[0].Start)
		}
		return out[i].Target < out[j].Target
	})
	return out
}

func buildChain(target string, attacks []*dataset.Attack, gaps []float64) *Chain {
	// A chain is intra-family in the paper's data; attribute it to the
	// majority family.
	counts := make(map[dataset.Family]int)
	for _, a := range attacks {
		counts[a.Family]++
	}
	best, bestN := dataset.Family(""), 0
	for f, n := range counts {
		if n > bestN || (n == bestN && f < best) {
			best, bestN = f, n
		}
	}
	return &Chain{Target: target, Family: best, Attacks: attacks, Gaps: gaps}
}

// ChainStats summarizes §V-B: which families run multistage attacks, the
// gap distribution (Fig 17), and the longest chain (the paper: Ddoser,
// 22 attacks in ~18 minutes).
type ChainStats struct {
	Chains []*Chain
	// Families involved in multistage attacks, sorted by chain count.
	Families []dataset.Family
	// GapSummary describes all inter-strike gaps.
	GapSummary stats.Summary
	// FracWithin10s / FracWithin30s are Fig 17's landmarks (~65% / ~80%).
	FracWithin10s float64
	FracWithin30s float64
	Longest       *Chain
}

// AnalyzeChains detects chains and summarizes them. Chains may be empty,
// in which case the zero stats are returned.
func AnalyzeChains(s *dataset.Store) ChainStats {
	chains := DetectChains(s, 2)
	out := ChainStats{Chains: chains}
	if len(chains) == 0 {
		return out
	}
	famCounts := make(map[dataset.Family]int)
	var gaps []float64
	for _, c := range chains {
		famCounts[c.Family]++
		gaps = append(gaps, c.Gaps...)
		if out.Longest == nil || c.Length() > out.Longest.Length() {
			out.Longest = c
		}
	}
	for f := range famCounts {
		out.Families = append(out.Families, f)
	}
	sort.Slice(out.Families, func(i, j int) bool {
		if famCounts[out.Families[i]] != famCounts[out.Families[j]] {
			return famCounts[out.Families[i]] > famCounts[out.Families[j]]
		}
		return out.Families[i] < out.Families[j]
	})
	if len(gaps) > 0 {
		out.GapSummary = stats.Summarize(gaps)
		out.FracWithin10s = stats.FractionBelow(gaps, 10)
		out.FracWithin30s = stats.FractionBelow(gaps, 30)
	}
	return out
}

// GapCDF builds Fig 17's CDF over all chain gaps (clamped at zero from
// below, since small overlaps read as zero wait).
func GapCDF(chains []*Chain) *stats.ECDF {
	var gaps []float64
	for _, c := range chains {
		for _, g := range c.Gaps {
			if g < 0 {
				g = 0
			}
			gaps = append(gaps, g)
		}
	}
	return stats.NewECDF(gaps)
}

// ChainEvent is one dot of Fig 18: an attack inside a chain with its
// magnitude.
type ChainEvent struct {
	Target    string
	Family    dataset.Family
	Start     time.Time
	Magnitude int
}

// ChainEvents flattens chains into the Fig 18 scatter.
func ChainEvents(chains []*Chain) []ChainEvent {
	var out []ChainEvent
	for _, c := range chains {
		for _, a := range c.Attacks {
			out = append(out, ChainEvent{
				Target:    c.Target,
				Family:    c.Family,
				Start:     a.Start,
				Magnitude: a.Magnitude(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
