package core

import (
	"fmt"
	"math"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/stats"
)

// Durations returns every attack duration in seconds, in start-time order
// (the Fig 6 series).
func Durations(s *dataset.Store) []float64 {
	n := s.AttackRows()
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.AttackAt(i).Duration().Seconds())
	}
	return out
}

// FamilyDurations returns one family's durations in start-time order.
func FamilyDurations(s *dataset.Store, f dataset.Family) []float64 {
	rows := s.RowsByFamily(f)
	out := make([]float64, 0, len(rows))
	for _, row := range rows {
		out = append(out, s.AttackAt(int(row)).Duration().Seconds())
	}
	return out
}

// DurationStats carries the §III-C headline numbers: the paper reports
// mean 10,308 s, median 1,766 s, std 18,475 s, and 80% under 13,882 s
// (about four hours).
type DurationStats struct {
	stats.Summary
	// FracUnder4h is the fraction of attacks shorter than four hours.
	FracUnder4h float64
	// FracUnder60s is the fraction shorter than a minute (the paper keeps
	// this under 10%, which justifies its 60 s attack-splitting rule).
	FracUnder60s float64
}

// AnalyzeDurations summarizes a duration series; the error is non-nil for
// an empty series.
func AnalyzeDurations(durs []float64) (DurationStats, error) {
	if len(durs) == 0 {
		return DurationStats{}, fmt.Errorf("core: no durations to analyze")
	}
	return DurationStats{
		Summary:      stats.Summarize(durs),
		FracUnder4h:  stats.FractionBelow(durs, 4*3600),
		FracUnder60s: stats.FractionBelow(durs, 60),
	}, nil
}

// DurationCDF builds the Fig 7 empirical CDF.
func DurationCDF(durs []float64) *stats.ECDF {
	return stats.NewECDF(durs)
}

// BaselineDurations generates the reference single-ISP alarm workload the
// paper compares against (Mao et al. [24]: 31,612 alarms over four weeks,
// 80% shorter than 1.25 hours). It is a deterministic synthetic series
// whose CDF reproduces that comparison point, letting the Fig 7 discussion
// ("attacks are becoming more persistent") be regenerated.
func BaselineDurations(n int) []float64 {
	if n <= 0 {
		n = 31612
	}
	out := make([]float64, n)
	// Deterministic quantile sampling of a lognormal calibrated so the
	// 80th percentile sits at 1.25 h = 4,500 s: median 900 s, sigma ~1.9
	// gives q80 = 900 * exp(1.9 * 0.8416) = ~4,450 s.
	const (
		median = 900.0
		sigma  = 1.912
	)
	for i := range out {
		q := (float64(i) + 0.5) / float64(n)
		out[i] = median * expNormQuantile(sigma, q)
	}
	return out
}

// expNormQuantile returns exp(sigma * Phi^-1(q)).
func expNormQuantile(sigma, q float64) float64 {
	return math.Exp(sigma * normQuantile(q))
}

// normQuantile approximates the standard normal inverse CDF (Acklam's
// algorithm, max relative error ~1e-9 over (0,1)).
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p <= 0 {
			return -8
		}
		return 8
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// DurationPoint pairs an attack's start time with its duration, for the
// Fig 6 scatter rendering.
type DurationPoint struct {
	Start    time.Time
	Family   dataset.Family
	Duration float64 // seconds
}

// DurationSeries returns the full (start, duration) scatter of Fig 6.
func DurationSeries(s *dataset.Store) []DurationPoint {
	n := s.AttackRows()
	out := make([]DurationPoint, 0, n)
	for i := 0; i < n; i++ {
		v := s.AttackAt(i)
		out = append(out, DurationPoint{Start: v.Start(), Family: v.Family(), Duration: v.Duration().Seconds()})
	}
	return out
}
