package core

import (
	"math/rand"
	"testing"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/timeseries"
)

func TestPredictSeriesTooShort(t *testing.T) {
	if _, err := PredictSeries(dataset.Darkshell, []float64{1, 2, 3}, PredictConfig{}); err == nil {
		t.Error("short series succeeded (the paper skips Darkshell for this)")
	}
}

func TestPredictSeriesAR(t *testing.T) {
	// A positive AR(1)-style series: ARIMA should track it closely.
	rng := rand.New(rand.NewSource(5))
	n := 1200
	series := make([]float64, n)
	series[0] = 500
	for i := 1; i < n; i++ {
		series[i] = 100 + 0.8*series[i-1] + rng.NormFloat64()*50
		if series[i] < 0 {
			series[i] = 0
		}
	}
	res, err := PredictSeries(dataset.Pandora, series, PredictConfig{Order: timeseries.Order{P: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predicted) != len(res.Truth) || len(res.Errors) != len(res.Truth) {
		t.Fatalf("length mismatch: %d/%d/%d", len(res.Predicted), len(res.Truth), len(res.Errors))
	}
	if res.Similarity < 0.9 {
		t.Errorf("similarity = %v, want > 0.9 on AR data (Table IV band)", res.Similarity)
	}
	for i, p := range res.Predicted {
		if p < 0 {
			t.Fatalf("negative dispersion forecast %v at %d", p, i)
		}
	}
	// Table IV columns populated coherently.
	if res.MeanTruth <= 0 || res.MeanPred <= 0 {
		t.Errorf("means = %v/%v, want positive", res.MeanPred, res.MeanTruth)
	}
}

func TestPredictSeriesTestPointsCap(t *testing.T) {
	series := make([]float64, 400)
	rng := rand.New(rand.NewSource(6))
	for i := 1; i < len(series); i++ {
		series[i] = 50 + 0.5*series[i-1] + rng.NormFloat64()*10
	}
	res, err := PredictSeries(dataset.Optima, series, PredictConfig{
		Order:      timeseries.Order{P: 1},
		TestPoints: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truth) != 50 {
		t.Errorf("test points = %d, want capped at 50", len(res.Truth))
	}
}

func TestPredictDispersionOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)
	res, err := PredictDispersion(s, dataset.Dirtjumper, PredictConfig{
		Order:      timeseries.Order{P: 1},
		TestPoints: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Table IV: similarity above 0.8 for every reported family at full
	// scale (cmd/botreport measures 0.96); the small-scale bound is looser
	// because regime runs are long relative to the series.
	if res.Similarity < 0.7 {
		t.Errorf("dirtjumper dispersion similarity = %v, want > 0.7", res.Similarity)
	}
}

func TestPredictAllFamilies(t *testing.T) {
	s := synthWorkload(t)
	// Half split (TestPoints 0) so small families keep enough training
	// data; the paper's 2,700-point evaluation and its >0.8 similarities
	// are asserted at full scale by the experiments package.
	results := PredictAllFamilies(s, PredictConfig{Order: timeseries.Order{P: 1}})
	if len(results) < 5 {
		t.Fatalf("predicted families = %d, want >= 5 (Table IV covers 5)", len(results))
	}
	for _, r := range results {
		// Small-scale series carry few regime switches, so per-family
		// similarity is noisy here; the full-scale run (EXPERIMENTS.md)
		// measures 0.76-0.98 across families.
		if r.Similarity < 0.35 {
			t.Errorf("family %s similarity = %v, implausibly low", r.Family, r.Similarity)
		}
	}
}

func TestPredictNextAttacks(t *testing.T) {
	// A target hit every hour: the median predictor nails the final gap.
	var attacks []*dataset.Attack
	for i := 0; i < 8; i++ {
		attacks = append(attacks, mkAttack(dataset.DDoSID(i+1), dataset.Dirtjumper, 1,
			"5.5.5.1", t0.Add(time.Duration(i)*time.Hour), 10*time.Minute))
	}
	s := mustStore(t, attacks)
	preds := PredictNextAttacks(s, 4)
	if len(preds) != 1 {
		t.Fatalf("predictions = %d, want 1", len(preds))
	}
	p := preds[0]
	if p.ActualGap != 3600 {
		t.Errorf("actual gap = %v, want 3600", p.ActualGap)
	}
	if p.AbsError > 1 {
		t.Errorf("abs error = %v, want ~0 for perfectly periodic target", p.AbsError)
	}
}

func TestPredictNextAttacksOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)
	preds := PredictNextAttacks(s, 5)
	if len(preds) == 0 {
		t.Fatal("no repeat targets to predict")
	}
	// At minimum the predictions must be finite and non-negative.
	for _, p := range preds {
		if p.PredictedGap < 0 {
			t.Errorf("negative predicted gap for %s", p.Target)
		}
	}
}
