package core

import (
	"math"
	"testing"
	"time"

	"botscope/internal/dataset"
)

func TestIntervals(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.Add(30*time.Second), time.Hour),
		mkAttack(3, dataset.Dirtjumper, 1, "5.5.5.3", t0.Add(10*time.Minute), time.Hour),
	}
	gaps := Intervals(attacks)
	if len(gaps) != 2 {
		t.Fatalf("gaps = %d, want 2", len(gaps))
	}
	if gaps[0] != 30 || gaps[1] != 570 {
		t.Errorf("gaps = %v, want [30 570]", gaps)
	}
	if Intervals(attacks[:1]) != nil {
		t.Error("single attack produced gaps")
	}
}

func TestAnalyzeIntervals(t *testing.T) {
	gaps := []float64{0, 0, 30, 120, 3600}
	st, err := AnalyzeIntervals(gaps)
	if err != nil {
		t.Fatal(err)
	}
	if st.ExactZeroFrac != 0.4 {
		t.Errorf("ExactZeroFrac = %v, want 0.4", st.ExactZeroFrac)
	}
	if st.SimultaneousFrac != 0.6 { // 0, 0, 30 are below 60 s
		t.Errorf("SimultaneousFrac = %v, want 0.6", st.SimultaneousFrac)
	}
	if st.N != 5 {
		t.Errorf("N = %d, want 5", st.N)
	}
	if _, err := AnalyzeIntervals(nil); err == nil {
		t.Error("empty interval analysis succeeded")
	}
}

func TestClusterIntervals(t *testing.T) {
	gaps := []float64{
		10,    // simultaneous, excluded
		400,   // 5-10 min
		420,   // 5-10 min
		1800,  // 20-40 min
		9000,  // 1.5-4 hr
		90000, // 1-7 day
	}
	clusters := ClusterIntervals(gaps)
	find := func(label string) int {
		for _, c := range clusters {
			if c.Label == label {
				return c.Count
			}
		}
		t.Fatalf("cluster %q missing", label)
		return -1
	}
	if got := find("5-10 min"); got != 2 {
		t.Errorf("5-10 min = %d, want 2", got)
	}
	if got := find("20-40 min"); got != 1 {
		t.Errorf("20-40 min = %d, want 1", got)
	}
	if got := find("1.5-4 hr"); got != 1 {
		t.Errorf("1.5-4 hr = %d, want 1", got)
	}
	if got := find("1-7 day"); got != 1 {
		t.Errorf("1-7 day = %d, want 1", got)
	}
	total := 0
	for _, c := range clusters {
		total += c.Count
	}
	if total != 5 {
		t.Errorf("clustered total = %d, want 5 (simultaneous excluded)", total)
	}
}

func TestAnalyzeConcurrency(t *testing.T) {
	attacks := []*dataset.Attack{
		// Group 1: two dirtjumper attacks 10 s apart -> single family.
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 2, "5.5.5.2", t0.Add(10*time.Second), time.Hour),
		// Lone attack.
		mkAttack(3, dataset.Dirtjumper, 1, "5.5.5.3", t0.Add(2*time.Hour), time.Hour),
		// Group 2: dirtjumper + pandora 5 s apart -> multi family.
		mkAttack(4, dataset.Dirtjumper, 1, "5.5.5.4", t0.Add(5*time.Hour), time.Hour),
		mkAttack(5, dataset.Pandora, 3, "5.5.5.5", t0.Add(5*time.Hour+5*time.Second), time.Hour),
	}
	s := mustStore(t, attacks)
	got := AnalyzeConcurrency(s)
	if got.SingleFamilyGroups != 1 {
		t.Errorf("SingleFamilyGroups = %d, want 1", got.SingleFamilyGroups)
	}
	if got.MultiFamilyGroups != 1 {
		t.Errorf("MultiFamilyGroups = %d, want 1", got.MultiFamilyGroups)
	}
	if got.PairCounts["dirtjumper+pandora"] != 1 {
		t.Errorf("pair counts = %v, want dirtjumper+pandora x1", got.PairCounts)
	}
}

func TestTargetIntervals(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.1", t0.Add(time.Hour), time.Hour),
		mkAttack(3, dataset.Dirtjumper, 1, "5.5.5.1", t0.Add(3*time.Hour), time.Hour),
		mkAttack(4, dataset.Dirtjumper, 1, "5.5.5.2", t0, time.Hour),
	}
	s := mustStore(t, attacks)
	got := TargetIntervals(s, 3)
	if len(got) != 1 {
		t.Fatalf("targets = %d, want 1 (only 5.5.5.1 has >= 3 attacks)", len(got))
	}
	gaps := got["5.5.5.1"]
	if len(gaps) != 2 || gaps[0] != 3600 || gaps[1] != 7200 {
		t.Errorf("gaps = %v, want [3600 7200]", gaps)
	}
}

func TestIntervalsOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)
	gaps := AllIntervals(s)
	st, err := AnalyzeIntervals(gaps)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 3: a large share of all attacks launch concurrently. The scaled
	// workload stretches gaps (same window, fewer attacks), so the band is
	// generous; the full-scale check lives in the experiments package.
	if st.SimultaneousFrac < 0.2 {
		t.Errorf("global simultaneous fraction = %v, want >= 0.2", st.SimultaneousFrac)
	}
	// Per-family: dirtjumper has plenty of concurrent launches; aldibot
	// and optima have none below 60 s (Fig 5).
	for _, f := range []dataset.Family{dataset.Aldibot, dataset.Optima} {
		fg := FamilyIntervals(s, f)
		if len(fg) == 0 {
			continue
		}
		fs, err := AnalyzeIntervals(fg)
		if err != nil {
			t.Fatal(err)
		}
		// Fig 5 shows no sub-60s intervals for these families, yet Table VI
		// records one Optima collaboration (necessarily simultaneous) — the
		// paper's own data is in tension here. Allow at most a couple of
		// collaboration-induced events.
		if fs.SimultaneousFrac > 2.5/float64(len(fg)) {
			t.Errorf("%s simultaneous fraction = %v over %d gaps, want near 0 (Fig 5)", f, fs.SimultaneousFrac, len(fg))
		}
	}
	djStats, err := AnalyzeIntervals(FamilyIntervals(s, dataset.Dirtjumper))
	if err != nil {
		t.Fatal(err)
	}
	if djStats.SimultaneousFrac < 0.3 {
		t.Errorf("dirtjumper simultaneous fraction = %v, want >= 0.3", djStats.SimultaneousFrac)
	}

	// CDF sanity: monotone with full mass.
	cdf := IntervalCDF(gaps)
	if p := cdf.Eval(math.Inf(1)); p != 1 {
		t.Errorf("CDF at +inf = %v", p)
	}

	conc := AnalyzeConcurrency(s)
	if conc.SingleFamilyGroups == 0 || conc.MultiFamilyGroups == 0 {
		t.Errorf("concurrency groups = %+v, want both kinds present (§III-B)", conc)
	}
}
