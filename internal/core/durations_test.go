package core

import (
	"math"
	"testing"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/stats"
)

func TestDurations(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Pandora, 2, "5.5.5.2", t0.Add(time.Hour), 30*time.Minute),
	}
	s := mustStore(t, attacks)
	durs := Durations(s)
	if len(durs) != 2 || durs[0] != 3600 || durs[1] != 1800 {
		t.Errorf("durations = %v, want [3600 1800]", durs)
	}
	fd := FamilyDurations(s, dataset.Pandora)
	if len(fd) != 1 || fd[0] != 1800 {
		t.Errorf("pandora durations = %v, want [1800]", fd)
	}
}

func TestAnalyzeDurations(t *testing.T) {
	durs := []float64{30, 100, 1000, 10000, 20000}
	st, err := AnalyzeDurations(durs)
	if err != nil {
		t.Fatal(err)
	}
	if st.FracUnder60s != 0.2 {
		t.Errorf("FracUnder60s = %v, want 0.2", st.FracUnder60s)
	}
	if st.FracUnder4h != 0.8 { // 4h = 14400; four of five below
		t.Errorf("FracUnder4h = %v, want 0.8", st.FracUnder4h)
	}
	if _, err := AnalyzeDurations(nil); err == nil {
		t.Error("empty duration analysis succeeded")
	}
}

func TestBaselineDurations(t *testing.T) {
	base := BaselineDurations(0)
	if len(base) != 31612 {
		t.Fatalf("default baseline size = %d, want 31612 (Mao et al. alarm count)", len(base))
	}
	// The calibration point: 80% of baseline alarms last under 1.25 h.
	frac := stats.FractionBelow(base, 1.25*3600)
	if math.Abs(frac-0.8) > 0.02 {
		t.Errorf("baseline fraction under 1.25h = %v, want about 0.8", frac)
	}
	// Custom size works and stays calibrated.
	small := BaselineDurations(5000)
	if len(small) != 5000 {
		t.Fatalf("custom baseline size = %d", len(small))
	}
	if f := stats.FractionBelow(small, 1.25*3600); math.Abs(f-0.8) > 0.03 {
		t.Errorf("small baseline fraction = %v, want about 0.8", f)
	}
}

func TestNormQuantile(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
		tol  float64
	}{
		{p: 0.5, want: 0, tol: 1e-8},
		{p: 0.8416, want: 1.0, tol: 1e-2},
		{p: 0.9772, want: 2.0, tol: 1e-2},
		{p: 0.0228, want: -2.0, tol: 1e-2},
		{p: 0.001, want: -3.09, tol: 1e-2},
	}
	for _, tt := range tests {
		if got := normQuantile(tt.p); math.Abs(got-tt.want) > tt.tol {
			t.Errorf("normQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := normQuantile(0); got != -8 {
		t.Errorf("normQuantile(0) = %v, want clamp -8", got)
	}
	if got := normQuantile(1); got != 8 {
		t.Errorf("normQuantile(1) = %v, want clamp 8", got)
	}
}

func TestDurationSeries(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
	}
	s := mustStore(t, attacks)
	pts := DurationSeries(s)
	if len(pts) != 1 || pts[0].Duration != 3600 || pts[0].Family != dataset.Dirtjumper {
		t.Errorf("series = %+v", pts)
	}
}

func TestDurationsOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)
	st, err := AnalyzeDurations(Durations(s))
	if err != nil {
		t.Fatal(err)
	}
	// §III-C bands: median around 1,766 s, mean around 10,308 s, 80% < 4 h,
	// under 10% shorter than a minute.
	if st.Median < 500 || st.Median > 6000 {
		t.Errorf("median duration = %v, want order 1766", st.Median)
	}
	if st.Mean < 4000 || st.Mean > 25000 {
		t.Errorf("mean duration = %v, want order 10308", st.Mean)
	}
	if st.FracUnder4h < 0.65 || st.FracUnder4h > 0.95 {
		t.Errorf("fraction under 4h = %v, want about 0.8", st.FracUnder4h)
	}
	if st.FracUnder60s > 0.10 {
		t.Errorf("fraction under 60s = %v, want < 0.10", st.FracUnder60s)
	}
	// The Fig 7 comparison: our attacks last longer than the Mao et al.
	// baseline (80th percentiles ordered).
	ours := DurationCDF(Durations(s))
	base := DurationCDF(BaselineDurations(10000))
	if ours.Quantile(0.8) <= base.Quantile(0.8) {
		t.Errorf("our P80 %v not above baseline P80 %v", ours.Quantile(0.8), base.Quantile(0.8))
	}
}
