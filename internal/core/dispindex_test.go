package core

import (
	"sync"
	"testing"

	"botscope/internal/timeseries"
)

// TestDispersionIndexMatchesDirect checks the index serves exactly what
// the direct per-call computation produces, for every family.
func TestDispersionIndexMatchesDirect(t *testing.T) {
	s := synthWorkload(t)
	ix := NewDispersionIndex(s)
	for _, f := range s.Families() {
		want := DispersionSeries(s, f)
		got := ix.Series(f)
		if len(got) != len(want) {
			t.Fatalf("%s: index series has %d points, direct %d", f, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: point %d differs: %+v vs %+v", f, i, got[i], want[i])
			}
		}
	}
	// The memoized slice must be the same allocation on repeat calls.
	f := s.Families()[0]
	a, b := ix.Series(f), ix.Series(f)
	if len(a) > 0 && &a[0] != &b[0] {
		t.Error("repeated Series calls returned different backing arrays; memoization is not working")
	}
}

// TestDispersionIndexDerived checks the derived accessors agree with their
// package-level counterparts.
func TestDispersionIndexDerived(t *testing.T) {
	s := synthWorkload(t)
	ix := NewDispersionIndex(s)

	wantFams := ActiveDispersionFamilies(s, 10)
	gotFams := ix.ActiveFamilies(10)
	if len(wantFams) != len(gotFams) {
		t.Fatalf("ActiveFamilies: %v vs %v", gotFams, wantFams)
	}
	for i := range wantFams {
		if wantFams[i] != gotFams[i] {
			t.Fatalf("ActiveFamilies order differs: %v vs %v", gotFams, wantFams)
		}
	}
	if len(wantFams) == 0 {
		t.Fatal("no active families; comparisons below are vacuous")
	}
	f := wantFams[0]

	wantProf, err1 := ProfileDispersion(s, f)
	gotProf, err2 := ix.Profile(f)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("Profile error mismatch: %v vs %v", err2, err1)
	}
	if wantProf != gotProf {
		t.Errorf("Profile(%s): %+v vs %+v", f, gotProf, wantProf)
	}

	cfg := PredictConfig{Order: timeseries.Order{P: 1}}
	wantPred, err1 := PredictDispersion(s, f, cfg)
	gotPred, err2 := ix.Predict(f, cfg)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("Predict error mismatch: %v vs %v", err2, err1)
	}
	if err1 == nil && (wantPred.Similarity != gotPred.Similarity || wantPred.MeanPred != gotPred.MeanPred) {
		t.Errorf("Predict(%s): similarity %v vs %v", f, gotPred.Similarity, wantPred.Similarity)
	}

	wantAll := PredictAllFamilies(s, cfg)
	gotAll := ix.PredictAll(cfg, 4)
	if len(wantAll) != len(gotAll) {
		t.Fatalf("PredictAll: %d results vs %d", len(gotAll), len(wantAll))
	}
	for i := range wantAll {
		if wantAll[i].Family != gotAll[i].Family || wantAll[i].Similarity != gotAll[i].Similarity {
			t.Errorf("PredictAll[%d]: %s/%v vs %s/%v", i,
				gotAll[i].Family, gotAll[i].Similarity, wantAll[i].Family, wantAll[i].Similarity)
		}
	}

	if len(wantFams) >= 2 {
		order := timeseries.Order{P: 1}
		wantTM := TransferMatrix(s, wantFams[:2], order, 10)
		gotTM := ix.TransferMatrixWorkers(wantFams[:2], order, 10, 4)
		if len(wantTM) != len(gotTM) {
			t.Fatalf("TransferMatrix: %d results vs %d", len(gotTM), len(wantTM))
		}
		for i := range wantTM {
			if *wantTM[i] != *gotTM[i] {
				t.Errorf("TransferMatrix[%d]: %+v vs %+v", i, gotTM[i], wantTM[i])
			}
		}
	}
}

// TestDispersionIndexConcurrent hammers the index from many goroutines
// under -race: concurrent first computations, repeat reads, and a
// Precompute all racing on the same index.
func TestDispersionIndexConcurrent(t *testing.T) {
	s := synthWorkload(t)
	ix := NewDispersionIndex(s)
	fams := s.Families()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == 0 {
				ix.Precompute(4)
				return
			}
			for r := 0; r < 3; r++ {
				for _, f := range fams {
					_ = ix.Series(f)
				}
			}
		}(g)
	}
	wg.Wait()
	for _, f := range fams {
		want := DispersionSeries(s, f)
		if got := ix.Series(f); len(got) != len(want) {
			t.Fatalf("%s: concurrent fill produced %d points, want %d", f, len(got), len(want))
		}
	}
}
