package core

import (
	"sort"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/par"
)

// CollabDurationWindow is the paper's second collaboration criterion: the
// participating attacks' durations differ by at most half an hour (§V).
const CollabDurationWindow = 30 * time.Minute

// Collaboration is one detected collaborative attack: at least two attacks
// by distinct botnets on the same target, starting within 60 seconds, with
// durations within half an hour of each other.
type Collaboration struct {
	Target  string
	Start   time.Time
	Attacks []*dataset.Attack
	// Families lists the distinct families involved, sorted.
	Families []dataset.Family
	// rows holds the member attack rows between column-native detection
	// and the batched record build; nil once Attacks is filled.
	rows []int32
}

// Intra reports whether the collaboration stays inside one family
// (different botnet generations of the same malware).
func (c *Collaboration) Intra() bool { return len(c.Families) == 1 }

// Botnets returns the number of distinct botnet IDs involved — the paper's
// Fig 15 reports an average of 2.19.
func (c *Collaboration) Botnets() int {
	seen := make(map[dataset.BotnetID]bool, len(c.Attacks))
	for _, a := range c.Attacks {
		seen[a.BotnetID] = true
	}
	return len(seen)
}

// DetectCollaborations scans the workload for collaborative attacks using
// the paper's criteria (60 s start window, 30 min duration window).
func DetectCollaborations(s *dataset.Store) []*Collaboration {
	return DetectCollaborationsWindow(s, SimultaneousThreshold, CollabDurationWindow)
}

// DetectCollaborationsWindow is DetectCollaborations with explicit
// thresholds, used by the window-sensitivity ablation. Attacks on one
// target are grouped by start windows of startWindow; a group qualifies
// when it has >= 2 distinct botnets and its duration spread fits
// durationWindow. Detection is sharded by target across all cores; see
// DetectCollaborationsWindowWorkers for the determinism argument.
func DetectCollaborationsWindow(s *dataset.Store, startWindow, durationWindow time.Duration) []*Collaboration {
	return DetectCollaborationsWindowWorkers(s, startWindow, durationWindow, 0)
}

// DetectCollaborationsWindowWorkers is DetectCollaborationsWindow with an
// explicit worker count (0 = all cores, 1 = sequential). Targets are
// independent — an attack group never spans two target IPs — so each
// worker detects over a disjoint target shard. Shards are merged in
// sorted-target order and the merged list is sorted by the total
// (Start, Target) order, making the output identical for every worker
// count.
func DetectCollaborationsWindowWorkers(s *dataset.Store, startWindow, durationWindow time.Duration, workers int) []*Collaboration {
	tids := s.TargetIDs()
	starts, durs := attackTimes(s)
	shards := par.ChunkMap(workers, len(tids), func(lo, hi int) []*Collaboration {
		d := &collabDetector{s: s, starts: starts, durs: durs, startWindow: startWindow, durationWindow: durationWindow}
		var shard []*Collaboration
		for _, tid := range tids[lo:hi] {
			shard = d.target(shard, s.TargetAddr(tid).String(), s.TargetRows(tid))
		}
		return shard
	})
	var out []*Collaboration
	for _, shard := range shards {
		out = append(out, shard...)
	}
	materializeCollabAttacks(s, out)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// materializeCollabAttacks fills every detected collaboration's member
// records in one batch. Member rows across collaborations never overlap
// (a row belongs to one target and one start window), so the batch visits
// them in ascending row order — the column and reference-arena reads
// sweep forward instead of hopping per collaboration, and the record
// arenas are allocated once for the whole detection.
func materializeCollabAttacks(s *dataset.Store, out []*Collaboration) {
	total := 0
	for _, c := range out {
		total += len(c.rows)
	}
	if total == 0 {
		return
	}
	rows := make([]int32, 0, total)
	slotC := make([]*Collaboration, 0, total)
	slotI := make([]int, 0, total)
	for _, c := range out {
		c.Attacks = make([]*dataset.Attack, len(c.rows))
		for i, row := range c.rows {
			rows = append(rows, row)
			slotC = append(slotC, c)
			slotI = append(slotI, i)
		}
		c.rows = nil
	}
	ord := make([]int, total)
	for k := range ord {
		ord[k] = k
	}
	sort.Slice(ord, func(a, b int) bool { return rows[ord[a]] < rows[ord[b]] })
	sortedRows := make([]int32, total)
	for k, o := range ord {
		sortedRows[k] = rows[o]
	}
	attacks := s.AttackRecords(sortedRows)
	for k, o := range ord {
		slotC[o].Attacks[slotI[o]] = attacks[k]
	}
	for _, c := range out {
		start := c.Attacks[0].Start
		for _, a := range c.Attacks[1:] {
			if a.Start.Before(start) {
				start = a.Start
			}
		}
		c.Start = start
	}
}

// attackTimes extracts every attack's start and duration into dense
// row-indexed arrays with one sequential pass over the start/end columns.
// The detector's window scan and duration sort both sit on the hot path,
// and an array load per probe beats reconstructing a column view per
// probe by a wide margin on large stores.
func attackTimes(s *dataset.Store) (starts, durs []int64) {
	n := s.NumAttacks()
	starts = make([]int64, n)
	durs = make([]int64, n)
	for i := 0; i < n; i++ {
		v := s.AttackAt(i)
		starts[i] = v.StartNano()
		durs[i] = int64(v.Duration())
	}
	return starts, durs
}

// collabDetector carries the shared read-only detection inputs plus one
// shard-local sort scratch, so per-group qualification allocates only for
// groups that actually qualify.
type collabDetector struct {
	s              *dataset.Store
	starts         []int64 // per-row attack starts, UTC nanoseconds
	durs           []int64 // per-row attack durations, nanoseconds
	startWindow    time.Duration
	durationWindow time.Duration
	scratch        []int32            // reused duration-sort buffer; never escapes a qualify call
	botnets        []dataset.BotnetID // reused distinct-botnet scratch
	fams           []dataset.Family   // reused distinct-family scratch
}

// target appends the qualifying collaborations of one target's
// chronologically ordered attack rows. Grouping and qualification both
// run on the columns; only the members of a qualifying subset
// materialize attack records.
func (d *collabDetector) target(out []*Collaboration, target string, rows []int32) []*Collaboration {
	starts, window := d.starts, int64(d.startWindow)
	i := 0
	for i < len(rows) {
		si := starts[rows[i]]
		j := i + 1
		for j < len(rows) && starts[rows[j]]-si < window {
			j++
		}
		if j-i >= 2 {
			if c := d.qualify(target, rows[i:j]); c != nil {
				out = append(out, c)
			}
		}
		i = j
	}
	return out
}

// qualify applies QualifyCollaboration's criteria to one start-window
// group of attack rows using column loads only, so candidate groups that
// fail the botnet-distinctness or duration-window tests never build a
// record. The duration sort sees the same initial order and the same
// comparator outcomes as the record-face qualifier (durs holds the same
// nanosecond difference Attack.Duration returns), so the detected subset
// — and the member order inside it — is identical.
func (d *collabDetector) qualify(target string, group []int32) *Collaboration {
	s, durs := d.s, d.durs
	sorted := append(d.scratch[:0], group...)
	d.scratch = sorted
	// Candidate groups are almost always tiny. sort.Slice hands any range
	// of <= 12 elements straight to its insertion sort, so the inlined
	// insertion sort below produces the exact same permutation while
	// skipping the func-value indirection and the interface conversion.
	if len(sorted) <= 12 {
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && durs[sorted[j]] < durs[sorted[j-1]]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
	} else {
		sort.Slice(sorted, func(i, j int) bool { return durs[sorted[i]] < durs[sorted[j]] })
	}
	window := int64(d.durationWindow)
	bestLo, bestHi := 0, 0
	lo := 0
	for hi := range sorted {
		for durs[sorted[hi]]-durs[sorted[lo]] > window {
			lo++
		}
		if hi-lo > bestHi-bestLo {
			bestLo, bestHi = lo, hi
		}
	}
	subset := sorted[bestLo : bestHi+1]
	if len(subset) < 2 {
		return nil
	}
	// Distinctness over a handful of members: linear-scan dedup into
	// reused scratch slices. First-appearance order followed by the same
	// final sort keeps famList identical to the map-based qualifier.
	botnets, fams := d.botnets[:0], d.fams[:0]
	for _, row := range subset {
		v := s.AttackAt(int(row))
		if b := v.BotnetID(); !containsBotnet(botnets, b) {
			botnets = append(botnets, b)
		}
		if f := v.Family(); !containsFamily(fams, f) {
			fams = append(fams, f)
		}
	}
	d.botnets, d.fams = botnets, fams
	if len(botnets) < 2 {
		return nil
	}
	famList := append([]dataset.Family(nil), fams...)
	sort.Slice(famList, func(i, j int) bool { return famList[i] < famList[j] })
	return &Collaboration{Target: target, rows: append([]int32(nil), subset...), Families: famList}
}

func containsBotnet(list []dataset.BotnetID, b dataset.BotnetID) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

func containsFamily(list []dataset.Family, f dataset.Family) bool {
	for _, x := range list {
		if x == f {
			return true
		}
	}
	return false
}

// QualifyCollaboration checks the botnet-distinctness and duration-window
// criteria over one start-window group of attacks on a single target,
// trimming the group to the largest duration-compatible subset. It returns
// nil when the group does not qualify. It is exported so the streaming
// analyzer (internal/stream) applies the exact same criteria to its
// windowed candidate groups as the batch detector does.
func QualifyCollaboration(target string, group []*dataset.Attack, durationWindow time.Duration) *Collaboration {
	// Find the largest subset whose durations sit inside the duration
	// window: sort by duration and slide a window.
	sorted := append([]*dataset.Attack(nil), group...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Duration() < sorted[j].Duration() })
	bestLo, bestHi := 0, 0
	lo := 0
	for hi := range sorted {
		for sorted[hi].Duration()-sorted[lo].Duration() > durationWindow {
			lo++
		}
		if hi-lo > bestHi-bestLo {
			bestLo, bestHi = lo, hi
		}
	}
	subset := sorted[bestLo : bestHi+1]
	if len(subset) < 2 {
		return nil
	}
	botnets := make(map[dataset.BotnetID]bool)
	fams := make(map[dataset.Family]bool)
	for _, a := range subset {
		botnets[a.BotnetID] = true
		fams[a.Family] = true
	}
	if len(botnets) < 2 {
		return nil
	}
	famList := make([]dataset.Family, 0, len(fams))
	for f := range fams {
		famList = append(famList, f)
	}
	sort.Slice(famList, func(i, j int) bool { return famList[i] < famList[j] })
	start := subset[0].Start
	for _, a := range subset {
		if a.Start.Before(start) {
			start = a.Start
		}
	}
	return &Collaboration{Target: target, Start: start, Attacks: subset, Families: famList}
}

// CollabStats is Table VI: per-family counts of intra- and inter-family
// collaborations.
type CollabStats struct {
	Intra map[dataset.Family]int
	Inter map[dataset.Family]int
	// PairCounts counts inter-family pairs, keyed "famA+famB" with A < B
	// (the paper: Dirtjumper+Pandora dominates).
	PairCounts map[string]int
	// Total counts, and the mean botnets per collaboration (paper: 2.19).
	TotalIntra     int
	TotalInter     int
	MeanBotnets    float64
	Collaborations []*Collaboration
}

// AnalyzeCollaborations runs detection and aggregates Table VI.
func AnalyzeCollaborations(s *dataset.Store) CollabStats {
	return AnalyzeCollaborationsFrom(DetectCollaborations(s))
}

// AnalyzeCollaborationsFrom aggregates Table VI over an already-detected
// collaboration list, letting callers that need both the table and the
// per-pair drill-downs detect once and share the result.
func AnalyzeCollaborationsFrom(collabs []*Collaboration) CollabStats {
	out := CollabStats{
		Intra:          make(map[dataset.Family]int),
		Inter:          make(map[dataset.Family]int),
		PairCounts:     make(map[string]int),
		Collaborations: collabs,
	}
	totalBotnets := 0
	for _, c := range collabs {
		totalBotnets += c.Botnets()
		if c.Intra() {
			out.TotalIntra++
			out.Intra[c.Families[0]]++
			continue
		}
		out.TotalInter++
		for _, f := range c.Families {
			out.Inter[f]++
		}
		for x := 0; x < len(c.Families); x++ {
			for y := x + 1; y < len(c.Families); y++ {
				out.PairCounts[string(c.Families[x])+"+"+string(c.Families[y])]++
			}
		}
	}
	if len(collabs) > 0 {
		out.MeanBotnets = float64(totalBotnets) / float64(len(collabs))
	}
	return out
}

// PairSummary describes the in-depth Dirtjumper-Pandora style analysis of
// §V-A: targets, countries, organizations, ASes, and per-family duration
// means across one inter-family pair's collaborations.
type PairSummary struct {
	A, B dataset.Family
	// Collaborations involving exactly {A, B}.
	Count         int
	UniqueTargets int
	Countries     int
	Organizations int
	ASNs          int
	// TopCountries are the most frequent victim countries of the pair.
	TopCountries []CountryCount
	// MeanDurationA/B are the mean durations (seconds) per family across
	// the pair's collaborations (paper: Pandora 6,420 s, Dirtjumper 5,083 s).
	MeanDurationA float64
	MeanDurationB float64
	// Span is the time from first to last collaboration (paper: ~16 weeks).
	Span time.Duration
	// Events carries the underlying collaborations for plotting (Fig 16).
	Events []*Collaboration
}

// AnalyzePair summarizes the collaborations between two specific families.
func AnalyzePair(s *dataset.Store, a, b dataset.Family) PairSummary {
	return AnalyzePairFrom(DetectCollaborations(s), a, b)
}

// AnalyzePairFrom is AnalyzePair over an already-detected collaboration
// list.
func AnalyzePairFrom(collabs []*Collaboration, a, b dataset.Family) PairSummary {
	out := PairSummary{A: a, B: b}
	targets := make(map[string]bool)
	countries := make(map[string]int)
	orgs := make(map[string]bool)
	asns := make(map[int]bool)
	var (
		sumA, sumB   float64
		nA, nB       int
		first, last  time.Time
		haveAnyEvent bool
	)
	for _, c := range collabs {
		if len(c.Families) != 2 || c.Families[0] != minFam(a, b) || c.Families[1] != maxFam(a, b) {
			continue
		}
		out.Count++
		out.Events = append(out.Events, c)
		targets[c.Target] = true
		for _, at := range c.Attacks {
			countries[at.TargetCountry]++
			orgs[at.TargetOrg] = true
			asns[at.TargetASN] = true
			switch at.Family {
			case a:
				sumA += at.Duration().Seconds()
				nA++
			case b:
				sumB += at.Duration().Seconds()
				nB++
			}
		}
		if !haveAnyEvent || c.Start.Before(first) {
			first = c.Start
		}
		if !haveAnyEvent || c.Start.After(last) {
			last = c.Start
		}
		haveAnyEvent = true
	}
	out.UniqueTargets = len(targets)
	out.Countries = len(countries)
	out.Organizations = len(orgs)
	out.ASNs = len(asns)
	for cc, n := range countries {
		out.TopCountries = append(out.TopCountries, CountryCount{CC: cc, Count: n})
	}
	sort.Slice(out.TopCountries, func(i, j int) bool {
		if out.TopCountries[i].Count != out.TopCountries[j].Count {
			return out.TopCountries[i].Count > out.TopCountries[j].Count
		}
		return out.TopCountries[i].CC < out.TopCountries[j].CC
	})
	if len(out.TopCountries) > 5 {
		out.TopCountries = out.TopCountries[:5]
	}
	if nA > 0 {
		out.MeanDurationA = sumA / float64(nA)
	}
	if nB > 0 {
		out.MeanDurationB = sumB / float64(nB)
	}
	if haveAnyEvent {
		out.Span = last.Sub(first)
	}
	return out
}

func minFam(a, b dataset.Family) dataset.Family {
	if a < b {
		return a
	}
	return b
}

func maxFam(a, b dataset.Family) dataset.Family {
	if a < b {
		return b
	}
	return a
}
