package core

import (
	"testing"

	"botscope/internal/dataset"
	"botscope/internal/timeseries"
)

func TestTransferPredictValidation(t *testing.T) {
	s := synthWorkload(t)
	// Aldibot has far fewer than 60 dispersion points at this scale.
	if _, err := TransferPredict(s, dataset.Aldibot, dataset.Dirtjumper, timeseries.Order{P: 1}, 60); err == nil {
		t.Error("short source series accepted")
	}
	if _, err := TransferPredict(s, dataset.Dirtjumper, dataset.Aldibot, timeseries.Order{P: 1}, 60); err == nil {
		t.Error("short target series accepted")
	}
}

func TestTransferPredictAcrossFamilies(t *testing.T) {
	s := synthWorkload(t)
	res, err := TransferPredict(s, dataset.Dirtjumper, dataset.Pandora, timeseries.Order{P: 1}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != dataset.Dirtjumper || res.Target != dataset.Pandora {
		t.Errorf("pair = %s->%s", res.Source, res.Target)
	}
	// The paper's cross-family claim: behavior learned on one family
	// carries to others. The transferred model must retain most of the
	// native model's predictive power.
	if res.NativeSimilarity <= 0 {
		t.Fatalf("native similarity = %v", res.NativeSimilarity)
	}
	if res.Retention < 0.5 {
		t.Errorf("retention = %v (transfer %v vs native %v), want >= 0.5",
			res.Retention, res.TransferSimilarity, res.NativeSimilarity)
	}
}

func TestTransferMatrix(t *testing.T) {
	s := synthWorkload(t)
	fams := []dataset.Family{dataset.Dirtjumper, dataset.Pandora, dataset.Blackenergy}
	results := TransferMatrix(s, fams, timeseries.Order{P: 1}, 60)
	if len(results) == 0 {
		t.Fatal("no transfer results")
	}
	if len(results) > 6 {
		t.Fatalf("results = %d, want at most 6 ordered pairs", len(results))
	}
	seen := make(map[string]bool)
	for _, r := range results {
		key := string(r.Source) + "->" + string(r.Target)
		if r.Source == r.Target {
			t.Errorf("self pair %s", key)
		}
		if seen[key] {
			t.Errorf("duplicate pair %s", key)
		}
		seen[key] = true
	}
}
