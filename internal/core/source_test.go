package core

import (
	"net/netip"
	"testing"
	"time"

	"botscope/internal/dataset"
)

// botAt creates a Botlist record at the given location.
func botAt(ip string, lat, lon float64) *dataset.Bot {
	return &dataset.Bot{
		IP: netip.MustParseAddr(ip), CountryCode: "RU", City: "Moscow",
		Org: "o", ASN: 1, Lat: lat, Lon: lon,
	}
}

func TestDispersionSeriesSymmetricFormation(t *testing.T) {
	// Two bots mirrored around a center: dispersion ~0.
	bots := []*dataset.Bot{
		botAt("9.0.0.1", 50, 9),
		botAt("9.0.0.2", 50, 11),
	}
	a := mkAttack(1, dataset.Pandora, 1, "5.5.5.1", t0, time.Hour)
	a.BotIPs = []netip.Addr{bots[0].IP, bots[1].IP}
	s := mustStore(t, []*dataset.Attack{a}, bots...)
	series := DispersionSeries(s, dataset.Pandora)
	if len(series) != 1 {
		t.Fatalf("series = %d points, want 1", len(series))
	}
	if series[0].Value > 5 {
		t.Errorf("symmetric dispersion = %v km, want ~0", series[0].Value)
	}
}

func TestDispersionSeriesSkipsUnresolvableBots(t *testing.T) {
	a := mkAttack(1, dataset.Pandora, 1, "5.5.5.1", t0, time.Hour)
	// Default mkAttack bot IP 9.9.9.9 has no Botlist record.
	s := mustStore(t, []*dataset.Attack{a})
	if series := DispersionSeries(s, dataset.Pandora); len(series) != 0 {
		t.Errorf("series = %v, want empty when no bots resolve", series)
	}
}

func TestProfileDispersion(t *testing.T) {
	bots := []*dataset.Bot{
		botAt("9.0.0.1", 50, 9),
		botAt("9.0.0.2", 50, 11),
		botAt("9.0.0.3", 0, 0),
		botAt("9.0.0.4", 10, 0),
		botAt("9.0.0.5", 80, 0),
	}
	// Attack 1 symmetric; attack 2 asymmetric (meridian triple).
	a1 := mkAttack(1, dataset.Pandora, 1, "5.5.5.1", t0, time.Hour)
	a1.BotIPs = []netip.Addr{bots[0].IP, bots[1].IP}
	a2 := mkAttack(2, dataset.Pandora, 1, "5.5.5.2", t0.Add(time.Hour), time.Hour)
	a2.BotIPs = []netip.Addr{bots[2].IP, bots[3].IP, bots[4].IP}
	s := mustStore(t, []*dataset.Attack{a1, a2}, bots...)

	prof, err := ProfileDispersion(s, dataset.Pandora)
	if err != nil {
		t.Fatal(err)
	}
	if prof.N != 2 {
		t.Fatalf("N = %d, want 2", prof.N)
	}
	if prof.SymmetricFrac != 0.5 {
		t.Errorf("SymmetricFrac = %v, want 0.5", prof.SymmetricFrac)
	}
	if prof.Asymmetric.N != 1 || prof.Asymmetric.Mean < 150 {
		t.Errorf("asymmetric summary = %+v, want one large value", prof.Asymmetric)
	}

	if _, err := ProfileDispersion(s, dataset.Optima); err == nil {
		t.Error("family without data succeeded")
	}
}

func TestDispersionHistogram(t *testing.T) {
	bots := []*dataset.Bot{
		botAt("9.0.0.3", 0, 0),
		botAt("9.0.0.4", 10, 0),
		botAt("9.0.0.5", 80, 0),
	}
	a := mkAttack(1, dataset.Blackenergy, 1, "5.5.5.1", t0, time.Hour)
	a.BotIPs = []netip.Addr{bots[0].IP, bots[1].IP, bots[2].IP}
	s := mustStore(t, []*dataset.Attack{a}, bots...)
	h, err := DispersionHistogram(s, dataset.Blackenergy, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1 {
		t.Errorf("histogram total = %d, want 1", h.Total())
	}
	if _, err := DispersionHistogram(s, dataset.Optima, 10); err == nil {
		t.Error("family without asymmetric data succeeded")
	}
}

func TestSourceOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)

	// Fig 9's family selection: several families have enough snapshots.
	active := ActiveDispersionFamilies(s, 10)
	if len(active) < 6 {
		t.Errorf("families with >= 10 dispersion points = %d, want >= 6", len(active))
	}

	// Pandora and Blackenergy symmetric shares (paper: 76.7% and 89.5%).
	pand, err := ProfileDispersion(s, dataset.Pandora)
	if err != nil {
		t.Fatal(err)
	}
	// Regime persistence makes the realized share noisy at small scale
	// (few campaign switches in a few hundred attacks); full-scale checks
	// live in the experiments package.
	if pand.SymmetricFrac < 0.55 || pand.SymmetricFrac > 0.95 {
		t.Errorf("pandora symmetric fraction = %v, want about 0.767", pand.SymmetricFrac)
	}
	be, err := ProfileDispersion(s, dataset.Blackenergy)
	if err != nil {
		t.Fatal(err)
	}
	if be.SymmetricFrac < 0.6 || be.SymmetricFrac > 0.99 {
		t.Errorf("blackenergy symmetric fraction = %v, want about 0.895", be.SymmetricFrac)
	}
	// Ordering: Blackenergy's asymmetric dispersions are far larger than
	// Pandora's (4,304 vs 566 km in the paper).
	if be.Asymmetric.Mean <= pand.Asymmetric.Mean {
		t.Errorf("blackenergy asymmetric mean %v not above pandora %v",
			be.Asymmetric.Mean, pand.Asymmetric.Mean)
	}

	// Dirtjumper: >40% of values at "zero" (Fig 9).
	dj, err := ProfileDispersion(s, dataset.Dirtjumper)
	if err != nil {
		t.Fatal(err)
	}
	if dj.SymmetricFrac < 0.4 {
		t.Errorf("dirtjumper symmetric fraction = %v, want > 0.4", dj.SymmetricFrac)
	}

	// CDF is well-formed.
	cdf, err := DispersionCDF(s, dataset.Pandora)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.N() != pand.N {
		t.Errorf("CDF N = %d, profile N = %d", cdf.N(), pand.N)
	}

	// Attacker-target distances are continental scale (paper: ~3,500 km
	// on average across families).
	dists := AttackerTargetDistance(s, dataset.Dirtjumper)
	if len(dists) == 0 {
		t.Fatal("no attacker-target distances")
	}
	var sum float64
	for _, d := range dists {
		sum += d
	}
	mean := sum / float64(len(dists))
	if mean < 500 || mean > 12000 {
		t.Errorf("mean attacker-target distance = %v km, want continental scale", mean)
	}
}
