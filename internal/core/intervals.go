package core

import (
	"fmt"
	"sort"
	"time"

	"botscope/internal/dataset"
	"botscope/internal/par"
	"botscope/internal/stats"
)

// SimultaneousThreshold is the 60-second window inside which the paper
// treats two launches as concurrent (§II-D, §V).
const SimultaneousThreshold = 60 * time.Second

// Intervals extracts the gaps (in seconds) between consecutive attack
// starts in the given chronologically ordered attack list. It returns nil
// for fewer than two attacks.
func Intervals(attacks []*dataset.Attack) []float64 {
	if len(attacks) < 2 {
		return nil
	}
	out := make([]float64, 0, len(attacks)-1)
	for i := 1; i < len(attacks); i++ {
		out = append(out, attacks[i].Start.Sub(attacks[i-1].Start).Seconds())
	}
	return out
}

// AllIntervals returns the gaps between consecutive attacks across all
// families (the "all attacks" curve of Fig 3).
func AllIntervals(s *dataset.Store) []float64 {
	n := s.AttackRows()
	if n < 2 {
		return nil
	}
	out := make([]float64, 0, n-1)
	prev := s.AttackAt(0).StartNano()
	for i := 1; i < n; i++ {
		cur := s.AttackAt(i).StartNano()
		out = append(out, time.Duration(cur-prev).Seconds())
		prev = cur
	}
	return out
}

// FamilyIntervals returns the per-family gap series (the family curves of
// Figs 3 and 5).
func FamilyIntervals(s *dataset.Store, f dataset.Family) []float64 {
	return rowIntervals(s, s.RowsByFamily(f))
}

// rowIntervals is Intervals over attack rows: the gaps in seconds
// between consecutive starts of a chronologically ordered row list,
// computed from the start column. time.Duration seconds-conversion
// matches Time.Sub exactly, so the series is bit-identical to the
// record-based one.
func rowIntervals(s *dataset.Store, rows []int32) []float64 {
	if len(rows) < 2 {
		return nil
	}
	out := make([]float64, 0, len(rows)-1)
	prev := s.AttackAt(int(rows[0])).StartNano()
	for _, row := range rows[1:] {
		cur := s.AttackAt(int(row)).StartNano()
		out = append(out, time.Duration(cur-prev).Seconds())
		prev = cur
	}
	return out
}

// IntervalStats carries the headline interval numbers the paper reports
// in §III-B.
type IntervalStats struct {
	stats.Summary
	// SimultaneousFrac is the fraction of gaps below the 60 s threshold.
	SimultaneousFrac float64
	// ExactZeroFrac is the fraction of gaps that are exactly zero.
	ExactZeroFrac float64
}

// AnalyzeIntervals summarizes a gap series. The error is non-nil for an
// empty series.
func AnalyzeIntervals(gaps []float64) (IntervalStats, error) {
	if len(gaps) == 0 {
		return IntervalStats{}, fmt.Errorf("core: no intervals to analyze")
	}
	st := IntervalStats{Summary: stats.Summarize(gaps)}
	zero, simult := 0, 0
	for _, g := range gaps {
		if stats.IsZero(g) {
			zero++
		}
		if g < SimultaneousThreshold.Seconds() {
			simult++
		}
	}
	st.ExactZeroFrac = float64(zero) / float64(len(gaps))
	st.SimultaneousFrac = float64(simult) / float64(len(gaps))
	return st, nil
}

// IntervalCDF builds the empirical CDF of a gap series (Figs 3, 5).
func IntervalCDF(gaps []float64) *stats.ECDF {
	return stats.NewECDF(gaps)
}

// IntervalCluster is one duration-scale bucket of Fig 4.
type IntervalCluster struct {
	Label string
	// Lo and Hi bound the bucket in seconds, half-open [Lo, Hi).
	Lo, Hi float64
	Count  int
}

// ClusterIntervals groups the non-simultaneous gaps of a family into the
// paper's Fig 4 time-unit clusters (minutes, hours, days, weeks, months)
// with finer sub-buckets inside the minute/hour ranges where the paper
// observed the 6-7 min, 20-40 min and 2-3 h modes.
func ClusterIntervals(gaps []float64) []IntervalCluster {
	clusters := []IntervalCluster{
		{Label: "1-5 min", Lo: 60, Hi: 300},
		{Label: "5-10 min", Lo: 300, Hi: 600},
		{Label: "10-20 min", Lo: 600, Hi: 1200},
		{Label: "20-40 min", Lo: 1200, Hi: 2400},
		{Label: "40-90 min", Lo: 2400, Hi: 5400},
		{Label: "1.5-4 hr", Lo: 5400, Hi: 14400},
		{Label: "4-24 hr", Lo: 14400, Hi: 86400},
		{Label: "1-7 day", Lo: 86400, Hi: 604800},
		{Label: "1-4 week", Lo: 604800, Hi: 2419200},
		{Label: "1+ month", Lo: 2419200, Hi: 1e18},
	}
	for _, g := range gaps {
		if g < SimultaneousThreshold.Seconds() {
			continue // Fig 4 excludes simultaneous launches
		}
		for i := range clusters {
			if g >= clusters[i].Lo && g < clusters[i].Hi {
				clusters[i].Count++
				break
			}
		}
	}
	return clusters
}

// ConcurrencyKind distinguishes the paper's two categories of concurrent
// attacks (§III-B).
type ConcurrencyKind int

// Concurrency categories.
const (
	// SingleFamily means all concurrent attacks in the group come from
	// one family.
	SingleFamily ConcurrencyKind = iota + 1
	// MultiFamily means at least two families launched within the window.
	MultiFamily
)

// ConcurrencyStats counts concurrent-launch groups by kind, and the most
// frequent cross-family pairs.
type ConcurrencyStats struct {
	SingleFamilyGroups int
	MultiFamilyGroups  int
	// PairCounts counts co-occurrences of family pairs in multi-family
	// groups, keyed "familyA+familyB" with A < B.
	PairCounts map[string]int
}

// AnalyzeConcurrency groups attacks whose starts fall within the
// 60-second threshold of the group's first start, then classifies groups
// with at least two attacks. This regenerates §III-B's 3,692 single-family
// and 956 multi-family concurrent events and the Dirtjumper+Blackenergy /
// Dirtjumper+Pandora pair counts.
func AnalyzeConcurrency(s *dataset.Store) ConcurrencyStats {
	n := s.AttackRows()
	out := ConcurrencyStats{PairCounts: make(map[string]int)}
	i := 0
	for i < n {
		si := s.AttackAt(i).StartNano()
		j := i + 1
		for j < n && time.Duration(s.AttackAt(j).StartNano()-si) < SimultaneousThreshold {
			j++
		}
		if j-i >= 2 {
			fams := make(map[dataset.Family]bool)
			for k := i; k < j; k++ {
				fams[s.AttackAt(k).Family()] = true
			}
			if len(fams) == 1 {
				out.SingleFamilyGroups++
			} else {
				out.MultiFamilyGroups++
				list := make([]dataset.Family, 0, len(fams))
				for f := range fams {
					list = append(list, f)
				}
				sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
				for x := 0; x < len(list); x++ {
					for y := x + 1; y < len(list); y++ {
						out.PairCounts[string(list[x])+"+"+string(list[y])]++
					}
				}
			}
		}
		i = j
	}
	return out
}

// TargetIntervals returns, for each target attacked at least minAttacks
// times, the gap series between consecutive attacks on it. The paper uses
// these to predict the start time of the next anticipated attack. The
// per-target extraction is sharded over disjoint target ranges; shard maps
// have disjoint key sets, so their union is order-independent.
func TargetIntervals(s *dataset.Store, minAttacks int) map[string][]float64 {
	if minAttacks < 2 {
		minAttacks = 2
	}
	tids := s.TargetIDs()
	shards := par.ChunkMap(0, len(tids), func(lo, hi int) map[string][]float64 {
		m := make(map[string][]float64)
		for _, tid := range tids[lo:hi] {
			rows := s.TargetRows(tid)
			if len(rows) < minAttacks {
				continue
			}
			m[s.TargetAddr(tid).String()] = rowIntervals(s, rows)
		}
		return m
	})
	out := make(map[string][]float64)
	for _, m := range shards {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}
