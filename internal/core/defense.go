package core

import (
	"fmt"
	"math/bits"
	"net/netip"
	"sort"
	"time"

	"botscope/internal/dataset"
)

// The paper closes §V with a defense insight: "if we could model the
// consecutive patterns of DDoS attacks, then the defender could leverage
// this information to prepare for the next rounds of attacks, e.g., by
// utilizing a blacklist." This file implements that proposal so its
// effectiveness can be evaluated on the workload: blacklists built from
// observed attack history, scored by how much of the *future* attack
// traffic they would have pre-blocked.

// BlacklistEntry is one bot in a defense blacklist, ranked by how often it
// participated in observed attacks.
type BlacklistEntry struct {
	IP netip.Addr
	// Occurrences is the number of attacks the bot joined during the
	// observation window.
	Occurrences int
	// Families is the number of distinct families the bot served — bots
	// serving several families are strong blacklist candidates.
	Families int
}

// Blacklist is an ordered bot blacklist with fast membership checks.
type Blacklist struct {
	entries []BlacklistEntry
	members map[netip.Addr]bool
}

// Len returns the number of blacklisted IPs.
func (b *Blacklist) Len() int { return len(b.entries) }

// Entries returns the ranked entries (most active first). The slice is
// shared and must not be modified.
//
//botscope:shared
func (b *Blacklist) Entries() []BlacklistEntry { return b.entries }

// Contains reports whether ip is blacklisted.
func (b *Blacklist) Contains(ip netip.Addr) bool { return b.members[ip] }

// Truncate returns a blacklist keeping only the top maxSize entries.
// Entries are already ranked, so this equals rebuilding with
// BuildBlacklist(..., maxSize) without rescanning the workload; the entry
// slice is shared with the receiver. maxSize <= 0 or >= Len returns the
// receiver unchanged.
func (b *Blacklist) Truncate(maxSize int) *Blacklist {
	if maxSize <= 0 || maxSize >= len(b.entries) {
		return b
	}
	// Clip capacity with a three-index slice: the truncated list shares the
	// receiver's backing array, and a later append through the short view
	// would otherwise clobber the receiver's tail entries in place.
	entries := b.entries[:maxSize:maxSize]
	members := make(map[netip.Addr]bool, len(entries))
	for _, e := range entries {
		members[e.IP] = true
	}
	return &Blacklist{entries: entries, members: members}
}

// BuildBlacklist ranks every bot seen in attacks starting inside
// [from, to) by participation and keeps the top maxSize entries
// (0 = keep everything). Zero times extend to the workload bounds.
//
// Accumulation runs over the store's dense bot index: a counts array plus
// a per-bot family bitset replace the map of per-IP accumulators the old
// scan allocated for every distinct bot. The ranking comparator is total
// (ties break on IP), so the entries are identical to the map-based build.
func BuildBlacklist(s *dataset.Store, from, to time.Time, maxSize int) (*Blacklist, error) {
	n := s.AttackRows()
	if n == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	ix := s.BotDense()
	fams := s.Families()
	famBit := make(map[dataset.Family]int, len(fams))
	for i, f := range fams {
		famBit[f] = i
	}
	famWords := (len(fams) + 63) / 64
	counts := make([]int32, ix.NumIDs())
	famSets := make([]uint64, ix.NumIDs()*famWords)
	for i := 0; i < n; i++ {
		v := s.AttackAt(i)
		if !from.IsZero() && v.Start().Before(from) {
			continue
		}
		if !to.IsZero() && !v.Start().Before(to) {
			continue
		}
		bit := famBit[v.Family()]
		word, mask := bit/64, uint64(1)<<(bit%64)
		for _, id := range ix.RefsRow(i) {
			counts[id]++
			famSets[int(id)*famWords+word] |= mask
		}
	}
	total := 0
	for _, c := range counts {
		if c > 0 {
			total++
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("core: no attacks inside the training window")
	}
	entries := make([]BlacklistEntry, 0, total)
	for id, c := range counts {
		if c == 0 {
			continue
		}
		nf := 0
		for w := 0; w < famWords; w++ {
			nf += bits.OnesCount64(famSets[id*famWords+w])
		}
		entries = append(entries, BlacklistEntry{IP: ix.IP(int32(id)), Occurrences: int(c), Families: nf})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Occurrences != entries[j].Occurrences {
			return entries[i].Occurrences > entries[j].Occurrences
		}
		if entries[i].Families != entries[j].Families {
			return entries[i].Families > entries[j].Families
		}
		return entries[i].IP.Less(entries[j].IP)
	})
	if maxSize > 0 && len(entries) > maxSize {
		entries = entries[:maxSize]
	}
	members := make(map[netip.Addr]bool, len(entries))
	for _, e := range entries {
		members[e.IP] = true
	}
	return &Blacklist{entries: entries, members: members}, nil
}

// BlacklistEvaluation scores a blacklist against a held-out attack window.
type BlacklistEvaluation struct {
	// Attacks is the number of evaluated future attacks.
	Attacks int
	// BotCoverage is the fraction of future bot participations the
	// blacklist would have pre-blocked.
	BotCoverage float64
	// AttacksBlunted is the fraction of future attacks losing at least
	// half their sources to the blacklist.
	AttacksBlunted float64
	// MedianCoverage is the median per-attack blocked fraction.
	MedianCoverage float64
}

// EvaluateBlacklist replays the attacks starting inside [from, to) against
// the blacklist. Zero times extend to the workload bounds.
//
// Membership is projected onto the dense bot index once up front — a
// bool per distinct bot — so the replay tests each of the millions of bot
// references with an array load instead of a map probe. Blacklist entries
// absent from the index cannot match any reference, so dropping them from
// the projection changes nothing.
func EvaluateBlacklist(s *dataset.Store, bl *Blacklist, from, to time.Time) (BlacklistEvaluation, error) {
	if bl == nil || bl.Len() == 0 {
		return BlacklistEvaluation{}, fmt.Errorf("core: empty blacklist")
	}
	ix := s.BotDense()
	listed := make([]bool, ix.NumIDs())
	for _, e := range bl.entries {
		if id, ok := ix.ID(e.IP); ok {
			listed[id] = true
		}
	}
	var (
		out     BlacklistEvaluation
		refs    int
		blocked int
	)
	perAttack := make([]float64, 0, s.NumAttacks())
	for i, n := 0, s.AttackRows(); i < n; i++ {
		v := s.AttackAt(i)
		if !from.IsZero() && v.Start().Before(from) {
			continue
		}
		if !to.IsZero() && !v.Start().Before(to) {
			continue
		}
		out.Attacks++
		hit := 0
		span := ix.RefsRow(i)
		for _, id := range span {
			refs++
			if listed[id] {
				blocked++
				hit++
			}
		}
		frac := float64(hit) / float64(len(span))
		perAttack = append(perAttack, frac)
		if frac >= 0.5 {
			out.AttacksBlunted++
		}
	}
	if out.Attacks == 0 {
		return BlacklistEvaluation{}, fmt.Errorf("core: no attacks inside the evaluation window")
	}
	out.BotCoverage = float64(blocked) / float64(refs)
	out.AttacksBlunted /= float64(out.Attacks)
	sort.Float64s(perAttack)
	out.MedianCoverage = perAttack[len(perAttack)/2]
	return out, nil
}

// MitigationWindow is the §III-D deployment insight for one repeat target:
// when to have defenses armed, derived from the target's gap distribution.
type MitigationWindow struct {
	Target string
	// LastSeen is the end of the target's most recent attack.
	LastSeen time.Time
	// ExpectedNext is the forecast start of the next attack.
	ExpectedNext time.Time
	// ArmFrom/ArmUntil bound the suggested high-alert window (the 25th to
	// 95th percentile of historical gaps after the last attack).
	ArmFrom  time.Time
	ArmUntil time.Time
	// HistoryGaps is the number of gaps backing the estimate.
	HistoryGaps int
}

// PlanMitigation builds mitigation windows for every target attacked at
// least minAttacks times, ordered by how soon defenses should be armed.
func PlanMitigation(s *dataset.Store, minAttacks int) []MitigationWindow {
	if minAttacks < 3 {
		minAttacks = 3
	}
	var out []MitigationWindow
	for _, tid := range s.TargetIDs() {
		rows := s.TargetRows(tid)
		if len(rows) < minAttacks {
			continue
		}
		gaps := rowIntervals(s, rows)
		sorted := append([]float64(nil), gaps...)
		sort.Float64s(sorted)
		q := func(p float64) float64 {
			idx := int(p * float64(len(sorted)-1))
			return sorted[idx]
		}
		last := s.AttackAt(int(rows[len(rows)-1]))
		median := q(0.5)
		// Pad the window by 10% of the median gap (at least 5 minutes) so
		// perfectly periodic targets still get a usable alert interval.
		pad := time.Duration(median * 0.1 * float64(time.Second))
		if pad < 5*time.Minute {
			pad = 5 * time.Minute
		}
		out = append(out, MitigationWindow{
			Target:       s.TargetAddr(tid).String(),
			LastSeen:     last.End(),
			ExpectedNext: last.Start().Add(time.Duration(median * float64(time.Second))),
			ArmFrom:      last.Start().Add(time.Duration(q(0.25)*float64(time.Second)) - pad),
			ArmUntil:     last.Start().Add(time.Duration(q(0.95)*float64(time.Second)) + pad),
			HistoryGaps:  len(gaps),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].ArmFrom.Equal(out[j].ArmFrom) {
			return out[i].ArmFrom.Before(out[j].ArmFrom)
		}
		return out[i].Target < out[j].Target
	})
	return out
}
