package core

import (
	"testing"
	"time"

	"botscope/internal/dataset"
)

func TestProtocolBreakdown(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.Add(time.Hour), time.Hour),
		mkAttack(3, dataset.YZF, 2, "5.5.5.3", t0.Add(2*time.Hour), time.Hour),
	}
	attacks[2].Category = dataset.CategoryUDP
	s := mustStore(t, attacks)
	got := ProtocolBreakdown(s)
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2", len(got))
	}
	if got[0].Category != dataset.CategoryHTTP || got[0].Count != 2 {
		t.Errorf("top row = %+v, want HTTP x2", got[0])
	}
	if got[1].Category != dataset.CategoryUDP || got[1].Count != 1 {
		t.Errorf("second row = %+v, want UDP x1", got[1])
	}
}

func TestProtocolBreakdownEmpty(t *testing.T) {
	s := mustStore(t, nil)
	if got := ProtocolBreakdown(s); len(got) != 0 {
		t.Errorf("breakdown of empty store = %v", got)
	}
}

func TestFamilyProtocolTable(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Blackenergy, 2, "5.5.5.2", t0.Add(time.Hour), time.Hour),
		mkAttack(3, dataset.Blackenergy, 2, "5.5.5.3", t0.Add(2*time.Hour), time.Hour),
	}
	attacks[2].Category = dataset.CategorySYN
	s := mustStore(t, attacks)
	rows := FamilyProtocolTable(s)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// HTTP rows come first (category display order), families alphabetical.
	if rows[0].Family != dataset.Blackenergy || rows[0].Category != dataset.CategoryHTTP || rows[0].Count != 1 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].Family != dataset.Dirtjumper || rows[1].Count != 1 {
		t.Errorf("row 1 = %+v", rows[1])
	}
	if rows[2].Category != dataset.CategorySYN || rows[2].Family != dataset.Blackenergy {
		t.Errorf("row 2 = %+v", rows[2])
	}
}

func TestDailyDistribution(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0.Add(2*time.Hour), time.Hour),
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.Add(5*time.Hour), time.Hour),
		mkAttack(3, dataset.Pandora, 2, "5.5.5.3", t0.Add(26*time.Hour), time.Hour),
		mkAttack(4, dataset.Dirtjumper, 1, "5.5.5.4", t0.Add(27*time.Hour), time.Hour),
		mkAttack(5, dataset.Dirtjumper, 1, "5.5.5.5", t0.Add(28*time.Hour), time.Hour),
	}
	s := mustStore(t, attacks)
	stats, err := DailyDistribution(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Days) != 2 {
		t.Fatalf("days = %d, want 2", len(stats.Days))
	}
	if stats.Days[0].Count != 2 || stats.Days[1].Count != 3 {
		t.Errorf("daily counts = %d, %d, want 2, 3", stats.Days[0].Count, stats.Days[1].Count)
	}
	if stats.Max != 3 || !stats.MaxDay.Equal(t0.AddDate(0, 0, 1)) {
		t.Errorf("max = %d on %v, want 3 on day 2", stats.Max, stats.MaxDay)
	}
	if stats.MaxDominantFamily != dataset.Dirtjumper {
		t.Errorf("dominant family = %s, want dirtjumper", stats.MaxDominantFamily)
	}
	if stats.Average != 2.5 {
		t.Errorf("average = %v, want 2.5", stats.Average)
	}
}

func TestDailyDistributionCountsGapDays(t *testing.T) {
	// Two attacks ten days apart: average must divide by the full span.
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.AddDate(0, 0, 9), time.Hour),
	}
	s := mustStore(t, attacks)
	stats, err := DailyDistribution(s)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Average != 0.2 {
		t.Errorf("average = %v, want 0.2 (2 attacks over 10 days)", stats.Average)
	}
}

func TestDailyDistributionEmpty(t *testing.T) {
	s := mustStore(t, nil)
	if _, err := DailyDistribution(s); err == nil {
		t.Error("empty store succeeded")
	}
}

func TestFamilyActivity(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.AddDate(0, 0, 10), time.Hour),
		mkAttack(3, dataset.Pandora, 2, "5.5.5.3", t0.AddDate(0, 0, 5), time.Hour),
	}
	s := mustStore(t, attacks)
	got := FamilyActivity(s)
	if len(got) != 2 {
		t.Fatalf("windows = %d, want 2", len(got))
	}
	if got[0].Family != dataset.Dirtjumper || got[0].Attacks != 2 {
		t.Errorf("first window = %+v, want dirtjumper x2", got[0])
	}
	if got[1].Family != dataset.Pandora || got[1].Coverage != 0 {
		t.Errorf("pandora window = %+v, want single-point coverage 0", got[1])
	}
	if got[0].Coverage < 0.9 {
		t.Errorf("dirtjumper coverage = %v, want ~1", got[0].Coverage)
	}
}

func TestFamilyActivityEmpty(t *testing.T) {
	if got := FamilyActivity(mustStore(t, nil)); got != nil {
		t.Errorf("activity of empty store = %v", got)
	}
}

func TestOverviewOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)
	breakdown := ProtocolBreakdown(s)
	if breakdown[0].Category != dataset.CategoryHTTP {
		t.Errorf("dominant protocol = %v, want HTTP (Fig 1)", breakdown[0].Category)
	}
	stats, err := DailyDistribution(s)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max <= int(stats.Average) {
		t.Errorf("max day %d not above average %v", stats.Max, stats.Average)
	}
	act := FamilyActivity(s)
	if act[0].Family != dataset.Dirtjumper {
		t.Errorf("most active family = %s, want dirtjumper", act[0].Family)
	}
}
