package core

import (
	"fmt"
	"math"
	"sort"

	"botscope/internal/dataset"
	"botscope/internal/stats"
	"botscope/internal/timeseries"
)

// PredictionResult is the per-family outcome of the paper's §IV-A
// geolocation-dispersion forecasting experiment (Figs 12-13, Table IV).
type PredictionResult struct {
	Family dataset.Family
	Order  timeseries.Order
	// Truth and Predicted hold the evaluation split (second half of the
	// series, or the last TestPoints values).
	Truth     []float64
	Predicted []float64
	// Errors is the per-point absolute error, chronological (the lower
	// panels of Figs 12-13).
	Errors []float64
	// Table IV's columns.
	MeanPred   float64
	StdPred    float64
	MeanTruth  float64
	StdTruth   float64
	Similarity float64
}

// PredictConfig parameterizes the forecasting experiment.
type PredictConfig struct {
	// Order is the ARIMA order; the zero value selects via AutoFit over a
	// small grid with d = 0.
	Order timeseries.Order
	// TestPoints caps the evaluation set size; the paper uses the last
	// 2,700 points. Zero means half the series.
	TestPoints int
	// MinSeries is the minimum series length to attempt a fit; the paper
	// skips Darkshell for lack of data. Zero means 40.
	MinSeries int
}

// PredictDispersion runs the paper's experiment for one family: fit ARIMA
// on the first half of its dispersion series, predict the second half
// one-step-ahead, score with mean/std/cosine similarity.
func PredictDispersion(s *dataset.Store, f dataset.Family, cfg PredictConfig) (*PredictionResult, error) {
	series := DispersionValues(DispersionSeries(s, f))
	return PredictSeries(f, series, cfg)
}

// PredictSeries is PredictDispersion on a pre-extracted series, so callers
// can forecast any per-attack quantity.
func PredictSeries(f dataset.Family, series []float64, cfg PredictConfig) (*PredictionResult, error) {
	minSeries := cfg.MinSeries
	if minSeries <= 0 {
		minSeries = 40
	}
	if len(series) < minSeries {
		return nil, fmt.Errorf("core: family %s has %d points, need %d for prediction (the paper skips such families)",
			f, len(series), minSeries)
	}
	split := len(series) / 2
	if cfg.TestPoints > 0 && len(series)-split > cfg.TestPoints {
		split = len(series) - cfg.TestPoints
	}

	var (
		model *timeseries.Model
		err   error
	)
	if cfg.Order == (timeseries.Order{}) {
		model, err = timeseries.AutoFit(series[:split], 0, 2, 1)
	} else {
		model, err = timeseries.Fit(series[:split], cfg.Order)
	}
	if err != nil {
		return nil, fmt.Errorf("core: fit dispersion model for %s: %w", f, err)
	}
	preds, err := model.OneStepForecasts(series, split)
	if err != nil {
		return nil, fmt.Errorf("core: forecast for %s: %w", f, err)
	}
	// Dispersion is a magnitude; clamp negative one-step forecasts.
	for i, p := range preds {
		if p < 0 {
			preds[i] = 0
		}
	}
	truth := series[split:]
	sim, err := stats.CosineSimilarity(preds, truth)
	if err != nil {
		return nil, fmt.Errorf("core: score forecasts for %s: %w", f, err)
	}
	errs := make([]float64, len(preds))
	for i := range preds {
		errs[i] = math.Abs(preds[i] - truth[i])
	}
	return &PredictionResult{
		Family:     f,
		Order:      model.Order,
		Truth:      truth,
		Predicted:  preds,
		Errors:     errs,
		MeanPred:   stats.Mean(preds),
		StdPred:    stats.StdDev(preds),
		MeanTruth:  stats.Mean(truth),
		StdTruth:   stats.StdDev(truth),
		Similarity: sim,
	}, nil
}

// PredictAllFamilies runs the experiment for every family with enough
// data, in count order (Table IV covers five families; Darkshell drops
// out for insufficient data). Families that fail to fit are skipped.
func PredictAllFamilies(s *dataset.Store, cfg PredictConfig) []*PredictionResult {
	var out []*PredictionResult
	for _, f := range ActiveDispersionFamilies(s, 1) {
		res, err := PredictDispersion(s, f, cfg)
		if err != nil {
			continue
		}
		out = append(out, res)
	}
	return out
}

// NextAttackPrediction is the target-side §III insight: for a repeatedly
// attacked target, the inter-attack gap distribution predicts when the
// next attack starts.
type NextAttackPrediction struct {
	Target string
	// PredictedGap is the forecast gap (seconds) to the next attack.
	PredictedGap float64
	// ActualGap is the held-out true gap.
	ActualGap float64
	// AbsError is |predicted - actual|.
	AbsError float64
}

// PredictNextAttacks evaluates start-time prediction per target: for each
// target with at least minAttacks attacks, hold out the last gap, forecast
// it from the earlier gaps (ARIMA when the history is long enough, median
// gap otherwise), and report the error.
func PredictNextAttacks(s *dataset.Store, minAttacks int) []NextAttackPrediction {
	if minAttacks < 4 {
		minAttacks = 4
	}
	intervals := TargetIntervals(s, minAttacks)
	targets := make([]string, 0, len(intervals))
	for target := range intervals {
		targets = append(targets, target)
	}
	sort.Strings(targets)
	var out []NextAttackPrediction
	for _, target := range targets {
		gaps := intervals[target]
		if len(gaps) < 3 {
			continue
		}
		history := gaps[:len(gaps)-1]
		actual := gaps[len(gaps)-1]
		pred := stats.Median(history)
		if len(history) >= 30 {
			if m, err := timeseries.Fit(history, timeseries.Order{P: 1}); err == nil {
				if fc, err := m.Forecast(1); err == nil && fc[0] >= 0 {
					pred = fc[0]
				}
			}
		}
		out = append(out, NextAttackPrediction{
			Target:       target,
			PredictedGap: pred,
			ActualGap:    actual,
			AbsError:     math.Abs(pred - actual),
		})
	}
	return out
}
