package core

import (
	"testing"
	"time"

	"botscope/internal/dataset"
)

// chainOn builds n back-to-back attacks on target with the given gap.
func chainOn(startID dataset.DDoSID, f dataset.Family, target string, n int, gap time.Duration) []*dataset.Attack {
	var out []*dataset.Attack
	t := t0
	for i := 0; i < n; i++ {
		a := mkAttack(startID+dataset.DDoSID(i), f, 1, target, t, time.Minute)
		out = append(out, a)
		t = a.End.Add(gap)
	}
	return out
}

func TestDetectChains(t *testing.T) {
	attacks := chainOn(1, dataset.Ddoser, "5.5.5.1", 5, 5*time.Second)
	// Unrelated attack on the same target much later.
	attacks = append(attacks, mkAttack(100, dataset.Ddoser, 1, "5.5.5.1", t0.Add(24*time.Hour), time.Minute))
	s := mustStore(t, attacks)
	chains := DetectChains(s, 2)
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	c := chains[0]
	if c.Length() != 5 {
		t.Errorf("chain length = %d, want 5", c.Length())
	}
	if c.Family != dataset.Ddoser {
		t.Errorf("chain family = %s, want ddoser", c.Family)
	}
	if len(c.Gaps) != 4 {
		t.Errorf("gaps = %d, want 4", len(c.Gaps))
	}
	for _, g := range c.Gaps {
		if g != 5 {
			t.Errorf("gap = %v, want 5", g)
		}
	}
}

func TestDetectChainsOverlapCounts(t *testing.T) {
	// The second attack starts 30 s BEFORE the first ends: still a chain
	// (the paper allows a 60 s overlap margin).
	a1 := mkAttack(1, dataset.Nitol, 1, "5.5.5.1", t0, 2*time.Minute)
	a2 := mkAttack(2, dataset.Nitol, 1, "5.5.5.1", a1.End.Add(-30*time.Second), 2*time.Minute)
	s := mustStore(t, []*dataset.Attack{a1, a2})
	chains := DetectChains(s, 2)
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1 (overlap within margin)", len(chains))
	}
	if chains[0].Gaps[0] != -30 {
		t.Errorf("gap = %v, want -30", chains[0].Gaps[0])
	}
}

func TestDetectChainsBreaksOnBigGap(t *testing.T) {
	attacks := chainOn(1, dataset.Darkshell, "5.5.5.1", 3, 10*time.Second)
	// Next group after a 10-minute silence.
	later := chainOn(10, dataset.Darkshell, "5.5.5.1", 3, 10*time.Second)
	offset := later[0].Start.Add(10 * time.Minute).Sub(later[0].Start) // rebase
	for _, a := range later {
		a.Start = a.Start.Add(3*time.Minute + offset)
		a.End = a.End.Add(3*time.Minute + offset)
	}
	s := mustStore(t, append(attacks, later...))
	chains := DetectChains(s, 2)
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2 (split by the silence)", len(chains))
	}
}

func TestAnalyzeChains(t *testing.T) {
	var attacks []*dataset.Attack
	attacks = append(attacks, chainOn(1, dataset.Ddoser, "5.5.5.1", 22, 3*time.Second)...)
	attacks = append(attacks, chainOn(100, dataset.Darkshell, "5.5.5.2", 4, 20*time.Second)...)
	s := mustStore(t, attacks)
	st := AnalyzeChains(s)
	if len(st.Chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(st.Chains))
	}
	if st.Longest == nil || st.Longest.Length() != 22 {
		t.Errorf("longest chain = %v, want ddoser's 22", st.Longest)
	}
	if st.Longest.Family != dataset.Ddoser {
		t.Errorf("longest chain family = %s, want ddoser", st.Longest.Family)
	}
	if st.FracWithin10s <= st.FracWithin30s-1 {
		t.Errorf("gap fractions inconsistent: %v vs %v", st.FracWithin10s, st.FracWithin30s)
	}
	// 21 three-second gaps + 3 twenty-second gaps: within-10s = 21/24.
	if st.FracWithin10s < 0.8 || st.FracWithin10s > 0.9 {
		t.Errorf("FracWithin10s = %v, want 21/24", st.FracWithin10s)
	}
}

func TestAnalyzeChainsEmpty(t *testing.T) {
	s := mustStore(t, []*dataset.Attack{
		mkAttack(1, dataset.Optima, 1, "5.5.5.1", t0, time.Hour),
	})
	st := AnalyzeChains(s)
	if len(st.Chains) != 0 || st.Longest != nil {
		t.Errorf("chains on single attack = %+v", st)
	}
}

func TestGapCDFAndEvents(t *testing.T) {
	attacks := chainOn(1, dataset.Nitol, "5.5.5.1", 3, 5*time.Second)
	s := mustStore(t, attacks)
	chains := DetectChains(s, 2)
	cdf := GapCDF(chains)
	if cdf.N() != 2 {
		t.Fatalf("CDF N = %d, want 2", cdf.N())
	}
	if p := cdf.Eval(10); p != 1 {
		t.Errorf("CDF(10s) = %v, want 1", p)
	}
	events := ChainEvents(chains)
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Start.Before(events[i-1].Start) {
			t.Error("events not time ordered")
		}
	}
}

func TestChainsOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)
	st := AnalyzeChains(s)
	if len(st.Chains) == 0 {
		t.Fatal("no multistage chains detected in synthetic workload")
	}
	// §V-B: only the four chaining families (plus incidental short chains
	// from concurrent streams are possible but the leaders must be right).
	if len(st.Families) == 0 {
		t.Fatal("no chain families")
	}
	leaders := map[dataset.Family]bool{
		dataset.Darkshell: true, dataset.Ddoser: true,
		dataset.Dirtjumper: true, dataset.Nitol: true,
	}
	if !leaders[st.Families[0]] {
		t.Errorf("top chain family = %s, want one of darkshell/ddoser/dirtjumper/nitol", st.Families[0])
	}
	// Fig 17 landmarks: most gaps are seconds-scale.
	if st.FracWithin30s < 0.5 {
		t.Errorf("FracWithin30s = %v, want > 0.5 (paper ~0.8)", st.FracWithin30s)
	}
	if st.FracWithin10s > st.FracWithin30s {
		t.Errorf("gap CDF not monotone: %v > %v", st.FracWithin10s, st.FracWithin30s)
	}
	// The longest chain is long (the paper's record is 22).
	if st.Longest.Length() < 5 {
		t.Errorf("longest chain = %d, want >= 5", st.Longest.Length())
	}
}
