package core

import (
	"testing"
	"time"

	"botscope/internal/dataset"
)

func TestHourAndWeekdayCounts(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0.Add(3*time.Hour), time.Hour),  // 03:00 Wed
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.Add(27*time.Hour), time.Hour), // 03:00 Thu
		mkAttack(3, dataset.Dirtjumper, 1, "5.5.5.3", t0.Add(14*time.Hour), time.Hour), // 14:00 Wed
	}
	s := mustStore(t, attacks)
	hours := HourOfDayCounts(s)
	if hours[3] != 2 || hours[14] != 1 {
		t.Errorf("hour counts = %v", hours)
	}
	// 2012-08-29 is a Wednesday.
	days := DayOfWeekCounts(s)
	if days[time.Wednesday] != 2 || days[time.Thursday] != 1 {
		t.Errorf("weekday counts = %v", days)
	}
}

func TestReferenceDiurnalCounts(t *testing.T) {
	ref := ReferenceDiurnalCounts(24000)
	total := 0
	for _, c := range ref {
		total += c
	}
	if total != 24000 {
		t.Errorf("total = %d, want 24000 (volume conserved)", total)
	}
	// Mid-day peak clearly above the night trough.
	if ref[14] <= ref[2]*2 {
		t.Errorf("peak/trough = %d/%d, want pronounced day shape", ref[14], ref[2])
	}
}

func TestAnalyzeDiurnalFlatVsDiurnal(t *testing.T) {
	// Flat workload: one attack at every hour over several days.
	var flat []*dataset.Attack
	id := dataset.DDoSID(1)
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			flat = append(flat, mkAttack(id, dataset.Dirtjumper, 1, "5.5.5.1",
				t0.Add(time.Duration(d*24+h)*time.Hour), 10*time.Minute))
			id++
		}
	}
	s := mustStore(t, flat)
	res, err := AnalyzeDiurnal(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diurnal {
		t.Errorf("flat workload classified as diurnal: %+v", res)
	}
	if res.HourScore > 0.05 {
		t.Errorf("flat hour score = %v, want ~0", res.HourScore)
	}

	// Day-shaped workload: attacks drawn from the reference profile.
	ref := ReferenceDiurnalCounts(500)
	var diurnal []*dataset.Attack
	id = 1
	for h, n := range ref {
		for i := 0; i < n; i++ {
			day := i % 7
			diurnal = append(diurnal, mkAttack(id, dataset.Pandora, 1, "5.5.5.2",
				t0.Add(time.Duration(day*24+h)*time.Hour+time.Duration(i)*time.Second), 10*time.Minute))
			id++
		}
	}
	s2 := mustStore(t, diurnal)
	res2, err := AnalyzeDiurnal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Diurnal {
		t.Errorf("day-shaped workload not classified as diurnal: hour score %v vs reference %v",
			res2.HourScore, res2.ReferenceHourScore)
	}
}

func TestAnalyzeDiurnalEmpty(t *testing.T) {
	if _, err := AnalyzeDiurnal(mustStore(t, nil)); err == nil {
		t.Error("empty workload succeeded")
	}
}

func TestDiurnalOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)
	res, err := AnalyzeDiurnal(s)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §III-A claim: no diurnal pattern in DDoS launches.
	if res.Diurnal {
		t.Errorf("synthetic workload shows a diurnal pattern: score %v vs reference %v",
			res.HourScore, res.ReferenceHourScore)
	}
}
