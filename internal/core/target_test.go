package core

import (
	"testing"
	"time"

	"botscope/internal/dataset"
)

func TestTargetCountries(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.Add(time.Hour), time.Hour),
		mkAttack(3, dataset.Dirtjumper, 1, "5.5.5.3", t0.Add(2*time.Hour), time.Hour),
	}
	attacks[2].TargetCountry = "RU"
	s := mustStore(t, attacks)
	prof := TargetCountries(s, dataset.Dirtjumper, 5)
	if prof.Countries != 2 {
		t.Errorf("Countries = %d, want 2", prof.Countries)
	}
	if len(prof.Top) != 2 || prof.Top[0].CC != "US" || prof.Top[0].Count != 2 {
		t.Errorf("Top = %+v, want US x2 first", prof.Top)
	}
	// topN truncation.
	if got := TargetCountries(s, dataset.Dirtjumper, 1); len(got.Top) != 1 {
		t.Errorf("topN=1 returned %d rows", len(got.Top))
	}
}

func TestGlobalTargetCountries(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Pandora, 2, "5.5.5.2", t0.Add(time.Hour), time.Hour),
	}
	attacks[1].TargetCountry = "RU"
	s := mustStore(t, attacks)
	got := GlobalTargetCountries(s, 0)
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2", len(got))
	}
	// Equal counts break ties alphabetically.
	if got[0].CC != "RU" || got[1].CC != "US" {
		t.Errorf("order = %v, want RU then US", got)
	}
}

func TestOrgHotspots(t *testing.T) {
	feb := time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC)
	mar := time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Pandora, 1, "5.5.5.1", feb.Add(time.Hour), time.Hour),
		mkAttack(2, dataset.Pandora, 1, "5.5.5.2", feb.Add(2*time.Hour), time.Hour),
		mkAttack(3, dataset.Pandora, 1, "5.5.5.3", t0, time.Hour), // outside window
		mkAttack(4, dataset.Dirtjumper, 2, "5.5.5.4", feb.Add(time.Hour), time.Hour),
	}
	attacks[1].TargetOrg = "Other Org"
	s := mustStore(t, attacks)
	hs := OrgHotspots(s, dataset.Pandora, feb, mar)
	if len(hs) != 2 {
		t.Fatalf("hotspots = %d, want 2 (window + family filtered)", len(hs))
	}
	total := 0
	for _, h := range hs {
		total += h.Attacks
	}
	if total != 2 {
		t.Errorf("total window attacks = %d, want 2", total)
	}

	all := OrgHotspots(s, dataset.Pandora, time.Time{}, time.Time{})
	total = 0
	for _, h := range all {
		total += h.Attacks
	}
	if total != 3 {
		t.Errorf("unwindowed attacks = %d, want 3", total)
	}
}

func TestOrgBreadth(t *testing.T) {
	attacks := []*dataset.Attack{
		mkAttack(1, dataset.Dirtjumper, 1, "5.5.5.1", t0, time.Hour),
		mkAttack(2, dataset.Dirtjumper, 1, "5.5.5.2", t0.Add(time.Hour), time.Hour),
		mkAttack(3, dataset.Pandora, 2, "5.5.5.3", t0.Add(2*time.Hour), time.Hour),
	}
	attacks[1].TargetOrg = "Second Org"
	s := mustStore(t, attacks)
	got := OrgBreadth(s)
	if got[dataset.Dirtjumper] != 2 || got[dataset.Pandora] != 1 {
		t.Errorf("breadth = %v, want dirtjumper 2, pandora 1", got)
	}
}

func TestTargetsOnSynthWorkload(t *testing.T) {
	s := synthWorkload(t)

	// Table V per-family preferences (top countries).
	// Dirtjumper's US-vs-RU margin is only ~4%% of its attacks, which a
	// scaled sample can flip; the full-scale ordering is asserted by the
	// experiments package. Families with decisive margins are exact here.
	tests := []struct {
		family dataset.Family
		wantCC string
	}{
		{family: dataset.Colddeath, wantCC: "IN"},
		{family: dataset.Darkshell, wantCC: "CN"},
		{family: dataset.Nitol, wantCC: "CN"},
		{family: dataset.Pandora, wantCC: "RU"},
		{family: dataset.Ddoser, wantCC: "MX"},
	}
	for _, tt := range tests {
		prof := TargetCountries(s, tt.family, 5)
		if len(prof.Top) == 0 {
			t.Errorf("%s has no target countries", tt.family)
			continue
		}
		if prof.Top[0].CC != tt.wantCC {
			t.Errorf("%s top country = %s, want %s (Table V)", tt.family, prof.Top[0].CC, tt.wantCC)
		}
	}

	// Global ranking: USA and Russia lead (paper: 13,738 and 11,451). At
	// small scale their ordering can flip, so assert the top-2 set.
	global := GlobalTargetCountries(s, 5)
	top2 := map[string]bool{global[0].CC: true, global[1].CC: true}
	if !top2["US"] || !top2["RU"] {
		t.Errorf("global top-2 = %v, want {US, RU}", global[:2])
	}
	// Dirtjumper's top country must at least be one of its two leaders.
	dj := TargetCountries(s, dataset.Dirtjumper, 2)
	if cc := dj.Top[0].CC; cc != "US" && cc != "RU" {
		t.Errorf("dirtjumper top country = %s, want US or RU", cc)
	}

	// Dirtjumper has the widest organizational breadth.
	breadth := OrgBreadth(s)
	for f, n := range breadth {
		if f != dataset.Dirtjumper && n > breadth[dataset.Dirtjumper] {
			t.Errorf("%s breadth %d exceeds dirtjumper %d", f, n, breadth[dataset.Dirtjumper])
		}
	}

	// Fig 14: hotspots exist and are concentrated.
	hs := OrgHotspots(s, dataset.Pandora, time.Time{}, time.Time{})
	if len(hs) == 0 {
		t.Fatal("no pandora hotspots")
	}
	if hs[0].Attacks < 2 {
		t.Errorf("top hotspot = %d attacks, want concentration", hs[0].Attacks)
	}
}
