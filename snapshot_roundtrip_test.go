package botscope

import (
	"bytes"
	"fmt"
	"testing"

	"botscope/internal/experiments"
)

// TestSnapshotRoundTripRunall is the end-to-end gate on the binary
// columnar snapshot codec: generate a workload, snapshot it, reload it,
// and render every table, figure, and extension from both stores. The
// outputs must be byte-identical — the same discipline as the
// parallel-synth determinism tests, so any divergence in bot dense
// numbering, index order, or timestamp round-tripping shows up as a byte
// diff in a named experiment rather than a subtle metric drift.
func TestSnapshotRoundTripRunall(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale round trip skipped in -short mode")
	}
	scale := roundTripScale

	store, err := Generate(GenerateConfig{Seed: 1, Scale: scale})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	var snap bytes.Buffer
	if err := WriteSnapshot(&snap, store); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	reloaded, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}

	if got, want := reloaded.NumAttacks(), store.NumAttacks(); got != want {
		t.Fatalf("reloaded store has %d attacks, want %d", got, want)
	}
	if got, want := reloaded.NumBots(), store.NumBots(); got != want {
		t.Fatalf("reloaded store has %d bots, want %d", got, want)
	}
	if got, want := reloaded.NumBotnets(), store.NumBotnets(); got != want {
		t.Fatalf("reloaded store has %d botnets, want %d", got, want)
	}

	// Render the full experiment suite from both stores before touching
	// the record face of the reloaded one: the whole run must stay on the
	// column cursors, which is the tentpole property of the lazy load
	// path.
	genOut := renderAll(t, store, scale)
	snapOut := renderAll(t, reloaded, scale)
	if reloaded.RecordsMaterialized() {
		t.Fatal("runall materialized the record view of the snapshot-loaded store")
	}
	if len(genOut) == 0 {
		t.Fatal("runall produced no output; byte-identity check is vacuous")
	}

	// The raw record export must survive the round trip exactly; this is
	// the first record-face touch, so it also exercises lazy
	// materialization on a full-size store.
	var csvGen, csvSnap bytes.Buffer
	if err := WriteCSV(&csvGen, store.Attacks()); err != nil {
		t.Fatalf("WriteCSV(generated): %v", err)
	}
	if err := WriteCSV(&csvSnap, reloaded.Attacks()); err != nil {
		t.Fatalf("WriteCSV(reloaded): %v", err)
	}
	if !reloaded.RecordsMaterialized() {
		t.Fatal("Attacks() did not materialize the record view")
	}
	if !bytes.Equal(csvGen.Bytes(), csvSnap.Bytes()) {
		t.Fatalf("CSV export differs after snapshot round trip (%d vs %d bytes)",
			csvGen.Len(), csvSnap.Len())
	}
	for id, want := range genOut {
		got, ok := snapOut[id]
		if !ok {
			t.Errorf("%s: missing from snapshot-loaded run", id)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: output differs after snapshot round trip (%d vs %d bytes)",
				id, len(want), len(got))
		}
	}
	if len(snapOut) != len(genOut) {
		t.Errorf("snapshot-loaded run rendered %d experiments, want %d", len(snapOut), len(genOut))
	}
}

// renderAll runs every experiment against s and returns the rendered
// output (text plus metrics) keyed by experiment ID.
func renderAll(t *testing.T, s *Store, scale float64) map[string][]byte {
	t.Helper()
	w := experiments.FromStore(s, scale)
	out := make(map[string][]byte)
	for _, e := range w.All() {
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out[res.ID] = []byte(fmt.Sprintf("== %s — %s\n%s%s\n", res.ID, res.Title, res.Text, res.MetricsText()))
	}
	return out
}
