package botscope

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"botscope/internal/botnet"
	"botscope/internal/core"
	"botscope/internal/dataset"
	"botscope/internal/experiments"
	"botscope/internal/geo"
	"botscope/internal/stats"
	"botscope/internal/timeseries"
)

// benchScale controls the workload size of all benches. Override with
// BOTSCOPE_BENCH_SCALE=1.0 for a paper-size run.
func benchScale() float64 {
	if s := os.Getenv("BOTSCOPE_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

var (
	benchOnce sync.Once
	benchWl   *experiments.Workload
	benchErr  error
)

func benchWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchOnce.Do(func() {
		benchWl, benchErr = experiments.NewWorkload(1, benchScale())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWl
}

// BenchmarkGenerateWorkload times the synthetic workload generation
// pipeline itself (geo DB + simulation + indexing) at 1% scale.
func BenchmarkGenerateWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(GenerateConfig{Seed: int64(i + 1), Scale: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamIngest measures single-writer ingest throughput of the
// streaming analyzer, replaying the bench workload in event-time order and
// starting a fresh analyzer at each full pass.
func BenchmarkStreamIngest(b *testing.B) {
	attacks := benchWorkload(b).Store.Attacks()
	if len(attacks) == 0 {
		b.Skip("empty workload")
	}
	var sa *StreamAnalyzer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(attacks) == 0 {
			sa = NewStreamAnalyzer()
		}
		if err := sa.Ingest(attacks[i%len(attacks)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "attacks/sec")
}

// BenchmarkStreamSnapshot measures the cost of a full snapshot against a
// fully loaded analyzer — the per-request cost of the live endpoints.
func BenchmarkStreamSnapshot(b *testing.B) {
	attacks := benchWorkload(b).Store.Attacks()
	sa := NewStreamAnalyzer()
	for _, a := range attacks {
		if err := sa.Ingest(a); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := sa.Snapshot(); snap.Ingested != len(attacks) {
			b.Fatalf("snapshot ingested = %d, want %d", snap.Ingested, len(attacks))
		}
	}
}

// benchExperiment is the common driver: one bench per table/figure.
func benchExperiment(b *testing.B, run func() (*experiments.Result, error)) {
	b.Helper()
	w := benchWorkload(b)
	_ = w
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Text) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure1(b *testing.B)  { benchExperiment(b, benchWorkload(b).Figure1) }
func BenchmarkTableII(b *testing.B)  { benchExperiment(b, benchWorkload(b).TableII) }
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, benchWorkload(b).TableIII) }
func BenchmarkFigure2(b *testing.B)  { benchExperiment(b, benchWorkload(b).Figure2) }
func BenchmarkFigure3(b *testing.B)  { benchExperiment(b, benchWorkload(b).Figure3) }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, benchWorkload(b).Figure4) }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, benchWorkload(b).Figure5) }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, benchWorkload(b).Figure6) }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, benchWorkload(b).Figure7) }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, benchWorkload(b).Figure8) }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, benchWorkload(b).Figure9) }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, benchWorkload(b).Figure10) }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, benchWorkload(b).Figure11) }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, benchWorkload(b).Figure12) }
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, benchWorkload(b).Figure13) }
func BenchmarkTableIV(b *testing.B)  { benchExperiment(b, benchWorkload(b).TableIV) }
func BenchmarkTableV(b *testing.B)   { benchExperiment(b, benchWorkload(b).TableV) }
func BenchmarkFigure14(b *testing.B) { benchExperiment(b, benchWorkload(b).Figure14) }
func BenchmarkTableVI(b *testing.B)  { benchExperiment(b, benchWorkload(b).TableVI) }
func BenchmarkFigure15(b *testing.B) { benchExperiment(b, benchWorkload(b).Figure15) }
func BenchmarkFigure16(b *testing.B) { benchExperiment(b, benchWorkload(b).Figure16) }
func BenchmarkFigure17(b *testing.B) { benchExperiment(b, benchWorkload(b).Figure17) }
func BenchmarkFigure18(b *testing.B) { benchExperiment(b, benchWorkload(b).Figure18) }

// Extension experiments.
func BenchmarkExtLoad(b *testing.B)        { benchExperiment(b, benchWorkload(b).ExtLoad) }
func BenchmarkExtDiurnal(b *testing.B)     { benchExperiment(b, benchWorkload(b).ExtDiurnal) }
func BenchmarkExtCalibration(b *testing.B) { benchExperiment(b, benchWorkload(b).ExtCalibration) }
func BenchmarkExtDefense(b *testing.B)     { benchExperiment(b, benchWorkload(b).ExtDefense) }
func BenchmarkExtTransfer(b *testing.B)    { benchExperiment(b, benchWorkload(b).ExtTransfer) }

// --- Ablation 1: interval mixture model vs a single lognormal ----------
//
// DESIGN.md choice: per-family inter-attack gaps come from a mixture
// (simultaneous spike + three Fig 4 modes + heavy tail). The ablation
// compares how much probability mass each model places in the paper's
// three common interval bands.
func BenchmarkAblationIntervalModel(b *testing.B) {
	models := map[string]botnet.IntervalModel{
		"mixture": {
			Modes: []botnet.IntervalMode{
				{Weight: 0.5, MedianSec: 0},
				{Weight: 0.26, MedianSec: 390, Sigma: 0.25},
				{Weight: 0.15, MedianSec: 1800, Sigma: 0.45},
				{Weight: 0.07, MedianSec: 9000, Sigma: 0.40},
				{Weight: 0.02, MedianSec: 90000, Sigma: 1.1},
			},
			MaxSec: 5e6,
		},
		"single-lognormal": {
			Modes: []botnet.IntervalMode{
				{Weight: 1, MedianSec: 1500, Sigma: 1.6},
			},
			MaxSec: 5e6,
		},
	}
	for name, model := range models {
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			inBands := 0
			total := 0
			for i := 0; i < b.N; i++ {
				v := model.Sample(rng)
				total++
				if (v >= 300 && v < 600) || (v >= 1200 && v < 2400) || (v >= 5400 && v < 14400) {
					inBands++
				}
			}
			b.ReportMetric(float64(inBands)/float64(total), "mode-band-mass")
		})
	}
}

// --- Ablation 2: signed dispersion vs mean distance to centroid --------
//
// DESIGN.md choice: the paper's signed-sum metric tells *balanced* wide
// formations (mirrored east/west around the centroid — its "complete
// geographical symmetry") apart from *imbalanced* ones. Plain mean
// distance to centroid sees both as equally wide. The reported metric is
// the asymmetric/symmetric ratio: the signed sum separates the regimes
// (ratio >> 1) while mean distance cannot (ratio ~ 1).
func BenchmarkAblationDispersion(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	west := geo.LatLon{Lat: 50, Lon: 10}
	east := geo.LatLon{Lat: 50, Lon: 50} // ~2,850 km apart
	cluster := func(at geo.LatLon, n int) []geo.LatLon {
		pts := make([]geo.LatLon, 0, n)
		for i := 0; i < n; i++ {
			jLat := (rng.Float64() - 0.5) * 0.7
			jLon := (rng.Float64() - 0.5) * 0.7
			pts = append(pts, geo.LatLon{Lat: at.Lat + jLat, Lon: at.Lon + jLon})
		}
		return pts
	}
	mkFormation := func(symmetric bool) []geo.LatLon {
		if symmetric {
			// Balanced: equal mass east and west. Wide, but the signed
			// sum cancels.
			return append(cluster(west, 20), cluster(east, 20)...)
		}
		// Imbalanced: same two sites, skewed mass.
		return append(cluster(west, 34), cluster(east, 6)...)
	}
	metrics := map[string]func([]geo.LatLon) (float64, bool){
		"signed-sum":    geo.Dispersion,
		"mean-distance": geo.MeanDistanceToCenter,
	}
	for name, metric := range metrics {
		b.Run(name, func(b *testing.B) {
			var symSum, asymSum float64
			n := 0
			for i := 0; i < b.N; i++ {
				s, _ := metric(mkFormation(true))
				a, _ := metric(mkFormation(false))
				symSum += s
				asymSum += a
				n++
			}
			if symSum > 0 {
				b.ReportMetric(asymSum/symSum, "asym/sym-separation")
			}
		})
	}
}

// --- Ablation 3: ARIMA vs baseline forecasters -------------------------
//
// DESIGN.md choice: ARIMA for the §IV-A dispersion forecast. The metric is
// the cosine similarity of one-step forecasts on the bench workload's
// dirtjumper dispersion series.
func BenchmarkAblationForecasters(b *testing.B) {
	w := benchWorkload(b)
	series := core.DispersionValues(core.DispersionSeries(w.Store, dataset.Dirtjumper))
	if len(series) < 100 {
		b.Skip("series too short at this scale")
	}
	split := len(series) / 2
	truth := series[split:]

	b.Run("arima(1,0,0)", func(b *testing.B) {
		var sim float64
		for i := 0; i < b.N; i++ {
			m, err := timeseries.Fit(series[:split], timeseries.Order{P: 1})
			if err != nil {
				b.Fatal(err)
			}
			preds, err := m.OneStepForecasts(series, split)
			if err != nil {
				b.Fatal(err)
			}
			sim, err = stats.CosineSimilarity(preds, truth)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(sim, "similarity")
	})
	baselines := []timeseries.Forecaster{
		timeseries.Naive{},
		timeseries.HistoricalMean{},
		timeseries.Drift{},
		timeseries.SES{Alpha: 0.3},
		timeseries.SlidingWindowMean{Window: 10},
	}
	for _, f := range baselines {
		b.Run(f.Name(), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				preds, err := timeseries.Rolling(f, series, split)
				if err != nil {
					b.Fatal(err)
				}
				sim, err = stats.CosineSimilarity(preds, truth)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sim, "similarity")
		})
	}
}

// --- Ablation 4: collaboration window sensitivity -----------------------
//
// DESIGN.md choice: the paper's 60 s / 30 min windows. The ablation sweeps
// the start window and reports how many collaborations each detects.
func BenchmarkAblationCollabWindow(b *testing.B) {
	w := benchWorkload(b)
	windows := []time.Duration{10 * time.Second, 60 * time.Second, 300 * time.Second}
	for _, win := range windows {
		b.Run(win.String(), func(b *testing.B) {
			var count int
			for i := 0; i < b.N; i++ {
				count = len(core.DetectCollaborationsWindow(w.Store, win, core.CollabDurationWindow))
			}
			b.ReportMetric(float64(count), "collaborations")
		})
	}
}

// --- Ablation 5: store indexes vs linear scans --------------------------
//
// DESIGN.md choice: family/target indexes in the store. The ablation times
// a per-family query against a full scan.
func BenchmarkAblationStoreIndex(b *testing.B) {
	w := benchWorkload(b)
	b.Run("indexed", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = len(w.Store.ByFamily(dataset.Pandora))
		}
		b.ReportMetric(float64(n), "attacks")
	})
	b.Run("linear-scan", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = 0
			for _, a := range w.Store.Attacks() {
				if a.Family == dataset.Pandora {
					n++
				}
			}
		}
		b.ReportMetric(float64(n), "attacks")
	})
}

// BenchmarkARIMAFit times a bare ARIMA(1,0,1) fit on a 2,000-point series,
// the unit of work behind Table IV.
func BenchmarkARIMAFit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	series := make([]float64, 2000)
	for i := 1; i < len(series); i++ {
		series[i] = 0.7*series[i-1] + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timeseries.Fit(series, timeseries.Order{P: 1, Q: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispersion times the signed-sum dispersion of a 50-bot
// formation, the unit of work behind Figs 9-13.
func BenchmarkDispersion(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]geo.LatLon, 50)
	for i := range pts {
		pts[i] = geo.LatLon{Lat: rng.Float64()*140 - 70, Lon: rng.Float64()*360 - 180}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := geo.Dispersion(pts); !ok {
			b.Fatal("empty formation")
		}
	}
}

// --- Kernel benchmarks at fixed scales ----------------------------------
//
// BenchmarkNewStore and BenchmarkDetectCollaborations pin the two new data-
// plane kernels (index construction, sharded collab detection) at scale 1
// and scale 10 so the BENCH_*.json trajectory tracks them. The scale-1
// variants skip under -short (they generate a paper-size workload once);
// the scale-10 variants only run when BOTSCOPE_BENCH_LARGE is set.

var (
	benchFixedMu  sync.Mutex
	benchFixedRaw = map[float64][3]any{}
)

// benchRawAt generates (and caches) the raw records of a fixed-scale
// workload for store-construction benchmarks.
func benchRawAt(b *testing.B, scale float64) ([]*Attack, []*Botnet, []*Bot) {
	b.Helper()
	benchFixedMu.Lock()
	defer benchFixedMu.Unlock()
	if raw, ok := benchFixedRaw[scale]; ok {
		return raw[0].([]*Attack), raw[1].([]*Botnet), raw[2].([]*Bot)
	}
	attacks, botnets, bots, err := GenerateRaw(GenerateConfig{Seed: 1, Scale: scale})
	if err != nil {
		b.Fatal(err)
	}
	benchFixedRaw[scale] = [3]any{attacks, botnets, bots}
	return attacks, botnets, bots
}

// gateFixedScale applies the skip policy described above.
func gateFixedScale(b *testing.B, scale float64) {
	b.Helper()
	if scale >= 10 && os.Getenv("BOTSCOPE_BENCH_LARGE") == "" {
		b.Skip("set BOTSCOPE_BENCH_LARGE=1 to run scale-10 benchmarks")
	}
	if testing.Short() {
		b.Skip("fixed-scale benchmark skipped in -short mode")
	}
}

func BenchmarkNewStore(b *testing.B) {
	for _, scale := range []float64{1, 10} {
		b.Run(fmt.Sprintf("scale%g", scale), func(b *testing.B) {
			gateFixedScale(b, scale)
			attacks, botnets, bots := benchRawAt(b, scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewStore(attacks, botnets, bots); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDetectCollaborations(b *testing.B) {
	for _, scale := range []float64{1, 10} {
		b.Run(fmt.Sprintf("scale%g", scale), func(b *testing.B) {
			gateFixedScale(b, scale)
			attacks, botnets, bots := benchRawAt(b, scale)
			store, err := NewStore(attacks, botnets, bots)
			if err != nil {
				b.Fatal(err)
			}
			store.Targets() // build the target index outside the timed region
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n := len(core.DetectCollaborations(store)); n == 0 {
					b.Fatal("no collaborations detected")
				}
			}
		})
	}
}
