package botscope_test

import (
	"fmt"
	"log"

	"botscope"
)

// ExampleGenerate shows the two-line path from nothing to an analyzable
// workload. Generation is deterministic: the same seed and scale always
// produce the same attacks.
func ExampleGenerate() {
	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 42, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	a := botscope.NewAnalyzer(store)
	daily, err := a.DailyDistribution()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacks: %d, peak day: %s\n", store.NumAttacks(), daily.MaxDay.Format("2006-01-02"))
	// Output:
	// attacks: 1044, peak day: 2012-08-29
}

// ExampleAnalyzer_Collaborations detects the paper's §V collaborative
// attacks: distinct botnets hitting one victim simultaneously with matched
// durations.
func ExampleAnalyzer_Collaborations() {
	store, err := botscope.Generate(botscope.GenerateConfig{Seed: 42, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	st := botscope.NewAnalyzer(store).Collaborations()
	fmt.Printf("intra-family: %d, inter-family: %d\n", st.TotalIntra, st.TotalInter)
	// Output:
	// intra-family: 28, inter-family: 5
}

// ExampleNewScenario composes a custom what-if workload: a Mirai-like IoT
// family alongside a calibrated 2013 family.
func ExampleNewScenario() {
	store, err := botscope.NewScenario(42).
		AddProfile(botscope.MiraiLikeProfile(100)).
		AddPaperFamily(botscope.Dirtjumper, 0.005).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range store.Families() {
		fmt.Printf("%s: %d attacks\n", f, len(store.ByFamily(f)))
	}
	// Output:
	// dirtjumper: 173 attacks
	// mirailike: 100 attacks
}
