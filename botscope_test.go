package botscope

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

var (
	apiOnce  sync.Once
	apiStore *Store
	apiErr   error
)

func apiWorkload(t *testing.T) *Store {
	t.Helper()
	apiOnce.Do(func() {
		apiStore, apiErr = Generate(GenerateConfig{Seed: 123, Scale: 0.04})
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiStore
}

func TestActiveFamilies(t *testing.T) {
	fams := ActiveFamilies()
	if len(fams) != 10 {
		t.Fatalf("families = %d, want 10", len(fams))
	}
	// The returned slice is a copy; mutating it must not corrupt the API.
	fams[0] = "mutant"
	if got := ActiveFamilies()[0]; got == "mutant" {
		t.Error("ActiveFamilies aliases internal state")
	}
}

func TestGenerateAndAnalyzeEndToEnd(t *testing.T) {
	store := apiWorkload(t)
	a := NewAnalyzer(store)

	sum := a.Summary()
	if sum.Attacks == 0 || sum.TrafficTypes != 7 {
		t.Fatalf("summary = %+v", sum)
	}
	if a.Store() != store {
		t.Error("Store accessor broken")
	}

	breakdown := a.ProtocolBreakdown()
	if len(breakdown) == 0 || breakdown[0].Category != CategoryHTTP {
		t.Errorf("breakdown = %v, want HTTP dominant", breakdown)
	}

	daily, err := a.DailyDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if daily.Max == 0 || len(daily.Days) == 0 {
		t.Errorf("daily = %+v", daily)
	}

	ist, err := a.AnalyzeIntervals(a.AllIntervals())
	if err != nil {
		t.Fatal(err)
	}
	if ist.N == 0 {
		t.Error("no intervals")
	}
	if fam := a.FamilyIntervals(Dirtjumper); len(fam) == 0 {
		t.Error("no dirtjumper intervals")
	}

	dst, err := a.AnalyzeDurations(a.Durations())
	if err != nil {
		t.Fatal(err)
	}
	if dst.Mean <= 0 {
		t.Errorf("duration mean = %v", dst.Mean)
	}

	prof, err := a.DispersionProfile(Pandora)
	if err != nil {
		t.Fatal(err)
	}
	if prof.N == 0 {
		t.Error("no pandora dispersion")
	}
	if len(a.DispersionSeries(Pandora)) != prof.N {
		t.Error("series length mismatch")
	}

	collabs := a.Collaborations()
	if collabs.TotalIntra == 0 {
		t.Error("no collaborations detected")
	}
	pair := a.Pair(Dirtjumper, Pandora)
	if pair.Count == 0 {
		t.Error("no dirtjumper-pandora pairs")
	}
	chains := a.Chains()
	if len(chains.Chains) == 0 {
		t.Error("no chains detected")
	}

	tc := a.TargetCountries(Darkshell, 5)
	if len(tc.Top) == 0 || tc.Top[0].CC != "CN" {
		t.Errorf("darkshell targets = %+v, want CN first", tc.Top)
	}
	if len(a.GlobalTargetCountries(3)) != 3 {
		t.Error("global target ranking truncation broken")
	}
	if len(a.OrgHotspots(Pandora, time.Time{}, time.Time{})) == 0 {
		t.Error("no hotspots")
	}

	weeks, err := a.WeeklySources(Dirtjumper)
	if err != nil {
		t.Fatal(err)
	}
	if len(weeks) == 0 {
		t.Error("no weekly source data")
	}

	preds := a.PredictNextAttacks(5)
	if len(preds) == 0 {
		t.Error("no next-attack predictions")
	}
}

func TestPredictDispersionViaAPI(t *testing.T) {
	store := apiWorkload(t)
	a := NewAnalyzer(store)
	res, err := a.PredictDispersion(Dirtjumper, PredictConfig{Order: ARIMAOrder{P: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Similarity < 0.5 {
		t.Errorf("similarity = %v, implausibly low", res.Similarity)
	}
	all := a.PredictAllFamilies(PredictConfig{Order: ARIMAOrder{P: 1}})
	if len(all) < 3 {
		t.Errorf("families predicted = %d, want several", len(all))
	}
}

func TestCodecRoundTripViaAPI(t *testing.T) {
	store := apiWorkload(t)
	attacks := store.Attacks()[:50]

	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, attacks); err != nil {
		t.Fatal(err)
	}
	gotCSV, err := ReadCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCSV) != len(attacks) {
		t.Errorf("csv round trip = %d records, want %d", len(gotCSV), len(attacks))
	}

	var jsonBuf bytes.Buffer
	if err := WriteJSONL(&jsonBuf, attacks); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := ReadJSONL(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotJSON) != len(attacks) {
		t.Errorf("jsonl round trip = %d records, want %d", len(gotJSON), len(attacks))
	}

	// Round-tripped records rebuild a valid store.
	if _, err := NewStore(gotCSV, nil, nil); err != nil {
		t.Errorf("round-tripped records rejected: %v", err)
	}
}

func TestGenerateRaw(t *testing.T) {
	attacks, botnets, bots, err := GenerateRaw(GenerateConfig{Seed: 5, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(attacks) == 0 || len(botnets) == 0 || len(bots) == 0 {
		t.Fatalf("raw generation incomplete: %d/%d/%d", len(attacks), len(botnets), len(bots))
	}
	if _, err := NewStore(attacks, botnets, bots); err != nil {
		t.Errorf("raw records rejected: %v", err)
	}
}

func TestARIMAHelpers(t *testing.T) {
	series := make([]float64, 300)
	for i := 1; i < len(series); i++ {
		series[i] = 0.6*series[i-1] + float64((i*37)%11) - 5
	}
	m, err := FitARIMA(series, ARIMAOrder{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fc, err := m.Forecast(3); err != nil || len(fc) != 3 {
		t.Errorf("forecast = %v, %v", fc, err)
	}
	auto, err := AutoFitARIMA(series, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Order.P == 0 && auto.Order.Q == 0 {
		t.Errorf("auto fit picked %v on an AR-ish series", auto.Order)
	}
}

func TestExtendedAnalyzerAPIs(t *testing.T) {
	store := apiWorkload(t)
	a := NewAnalyzer(store)

	prof, err := a.MagnitudeProfile(Dirtjumper)
	if err != nil {
		t.Fatal(err)
	}
	if prof.N == 0 || prof.Mean <= 0 {
		t.Errorf("magnitude profile = %+v", prof)
	}

	pts, load, err := a.ConcurrentLoad()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || load.Peak == 0 {
		t.Errorf("load = %+v", load)
	}

	diurnal, err := a.AnalyzeDiurnal()
	if err != nil {
		t.Fatal(err)
	}
	if diurnal.Diurnal {
		t.Errorf("workload classified diurnal: %+v", diurnal)
	}

	transfer, err := a.TransferPredict(Dirtjumper, Pandora, ARIMAOrder{P: 1}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if transfer.Retention <= 0 {
		t.Errorf("transfer = %+v", transfer)
	}

	acts, err := a.BotnetActivities(Dirtjumper)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) == 0 || acts[0].Attacks == 0 {
		t.Errorf("activities = %+v", acts)
	}
	churn, err := a.Churn(Dirtjumper)
	if err != nil {
		t.Fatal(err)
	}
	if churn.TopShare <= 0 || churn.P90Generations == 0 {
		t.Errorf("churn = %+v", churn)
	}

	first, last, _ := store.TimeBounds()
	split := first.Add(last.Sub(first) / 2)
	bl, err := a.BuildBlacklist(time.Time{}, split, 0)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := a.EvaluateBlacklist(bl, split, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.BotCoverage <= 0 {
		t.Errorf("blacklist eval = %+v", ev)
	}
	if plans := a.PlanMitigation(5); len(plans) == 0 {
		t.Error("no mitigation plans")
	}
}

func TestSubsetViaAPI(t *testing.T) {
	store := apiWorkload(t)
	sub, err := store.Subset(Filter{Families: []Family{Pandora}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttacks() == 0 || sub.NumAttacks() >= store.NumAttacks() {
		t.Errorf("subset attacks = %d of %d", sub.NumAttacks(), store.NumAttacks())
	}
	// The subset is a fully working store: analyses run on it.
	a := NewAnalyzer(sub)
	if _, err := a.DailyDistribution(); err != nil {
		t.Errorf("analysis on subset: %v", err)
	}
}

func TestForecastIntervalsViaAPI(t *testing.T) {
	store := apiWorkload(t)
	a := NewAnalyzer(store)
	series := a.DispersionSeries(Dirtjumper)
	m, err := FitARIMA(series, ARIMAOrder{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.ForecastWithIntervals(5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc) != 5 || fc[0].Lower >= fc[0].Upper {
		t.Errorf("forecast intervals = %+v", fc)
	}
}

func TestExperimentsViaAPI(t *testing.T) {
	store := apiWorkload(t)
	w := NewExperiments(store, 0.04)
	res, err := w.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "Table III" || res.Text == "" {
		t.Errorf("result = %+v", res)
	}
}

func TestStreamAnalyzerViaAPI(t *testing.T) {
	store := apiWorkload(t)
	sa := NewStreamAnalyzer()
	for _, a := range store.Attacks() {
		if err := sa.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	snap := sa.Snapshot()
	if snap.Ingested != store.NumAttacks() {
		t.Fatalf("ingested = %d, want %d", snap.Ingested, store.NumAttacks())
	}
	// The snapshot mirrors the batch analyzer over the same workload.
	a := NewAnalyzer(store)
	daily, err := a.DailyDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Daily.Max != daily.Max {
		t.Errorf("live daily max = %d, batch %d", snap.Daily.Max, daily.Max)
	}
	if err := sa.Ingest(store.Attacks()[0]); err == nil {
		t.Error("out-of-order ingest accepted")
	}
}
