//go:build !race

package botscope

// roundTripScale is the workload scale of the snapshot round-trip gate:
// full paper size, per the acceptance criterion that the scale-1 runall
// output is byte-identical across the generate and snapshot-load paths.
const roundTripScale = 1.0
